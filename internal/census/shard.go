package census

import (
	"bytes"
	"fmt"
	"time"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// This file is the distributed data path of the census: the shard frame
// (the unit of work a cluster coordinator leases to a vantage-point agent
// and the unit of result it streams back) and the round-scoped fold entry
// points that merge partial rows into the combined matrix.
//
// The paper's census was always a distributed system — hundreds of
// PlanetLab vantage points uploading measurements to one repository
// (Fig. 1) — and the shard frame is that upload, made incremental: one
// vantage point's row over one contiguous target span [Lo, Hi), encoded
// with the same hybrid bitmap/gap-list row codec and sorted delta-varint
// greylist section as the v2 run format (iov2.go), so the wire bytes are
// deterministic and decode hardening is shared with the archive path.
//
// Correctness under distribution rests on the fold algebra: the per-cell
// combine is min(), which is commutative, associative, and idempotent,
// and the greylist merge is a set union. Shards from different agents may
// therefore arrive in any order, be duplicated by re-leases after an
// agent loss, or interleave across vantage points, and the combined
// matrix still comes out byte-identical to the single-process
// Campaign.FoldRun path (TestFoldShardMatchesFoldRun,
// TestFoldShardOrderInvariance).

// NoSample is the exported sentinel for an absent echo sample in a shard
// row; the latency matrices use the same value internally.
const NoSample = noSample

// ShardFrameMagic is the leading bytes of an encoded shard frame:
//
//	magic   "ACMS1\n"
//	flags   byte (reserved, 0)
//	round   uvarint
//	lo      uvarint — first target index of the span
//	width   uvarint — span width in targets (hi = lo + width)
//	grey    uvarint count, then per entry: uvarint IP delta (sorted
//	        ascending) + kind byte (the v2 greylist section)
//	rows    uvarint count, then per row: uvarint combined slot, seven
//	        uvarint stats (sent, echo, errors, timeouts, source-dropped,
//	        fault-lost, completion ns), uvarint payload length; then the
//	        concatenated v2 row payloads, each width cells wide
const ShardFrameMagic = "ACMS1\n"

// ShardStats is the per-(VP, shard) slice of a probing run's statistics,
// carried on the wire without the embedded platform.VP of prober.Stats.
type ShardStats struct {
	Sent          int
	Echo          int
	Errors        int
	Timeouts      int
	SourceDropped int
	FaultLost     int
	Completion    time.Duration
}

// ShardStatsOf projects a prober run's statistics onto the wire shape.
func ShardStatsOf(s prober.Stats) ShardStats {
	return ShardStats{
		Sent:          s.Sent,
		Echo:          s.Echo,
		Errors:        s.Errors,
		Timeouts:      s.Timeouts,
		SourceDropped: s.SourceDropped,
		FaultLost:     s.FaultLost,
		Completion:    s.Completion,
	}
}

// ShardRows is a partial census result: one or more vantage points' rows
// over the contiguous target span [Lo, Hi) of one round. Slots index the
// campaign's combined matrix (the slot assignment BeginRound returned);
// RTTus rows are Hi-Lo cells wide with NoSample marking unanswered
// targets. Stats, when present, parallels Slots. Greylist carries the
// ICMP-error discoveries made while probing the span.
type ShardRows struct {
	Round    uint64
	Lo, Hi   int
	Slots    []int
	RTTus    [][]int32
	Stats    []ShardStats
	Greylist *prober.Greylist
}

// Encode serializes the shard frame. The bytes are a pure function of the
// contents (rows use the deterministic v2 row codec, the greylist is
// sorted), so encoding the same shard twice yields identical frames.
func (sr *ShardRows) Encode() ([]byte, error) {
	width := sr.Hi - sr.Lo
	if sr.Lo < 0 || width < 0 {
		return nil, fmt.Errorf("census: shard frame span [%d,%d) invalid", sr.Lo, sr.Hi)
	}
	if len(sr.RTTus) != len(sr.Slots) {
		return nil, fmt.Errorf("census: shard frame has %d rows for %d slots", len(sr.RTTus), len(sr.Slots))
	}
	if len(sr.Stats) != 0 && len(sr.Stats) != len(sr.Slots) {
		return nil, fmt.Errorf("census: shard frame has %d stats for %d slots", len(sr.Stats), len(sr.Slots))
	}

	var buf bytes.Buffer
	buf.WriteString(ShardFrameMagic)
	buf.WriteByte(0) // flags
	putUvarint(&buf, sr.Round)
	putUvarint(&buf, uint64(sr.Lo))
	putUvarint(&buf, uint64(width))

	g := sr.Greylist
	if g == nil {
		g = prober.NewGreylist()
	}
	encodeGreylistV2(&buf, g)

	rows := make([][]byte, len(sr.Slots))
	for i, row := range sr.RTTus {
		if len(row) != width {
			return nil, fmt.Errorf("census: shard row %d has %d cells for width %d", i, len(row), width)
		}
		rows[i] = encodeRowV2(row, width)
	}
	putUvarint(&buf, uint64(len(sr.Slots)))
	for i, slot := range sr.Slots {
		if slot < 0 {
			return nil, fmt.Errorf("census: shard row %d has negative slot %d", i, slot)
		}
		putUvarint(&buf, uint64(slot))
		var st ShardStats
		if len(sr.Stats) > 0 {
			st = sr.Stats[i]
		}
		for _, v := range [...]int{st.Sent, st.Echo, st.Errors, st.Timeouts, st.SourceDropped, st.FaultLost} {
			if v < 0 {
				return nil, fmt.Errorf("census: shard row %d has negative stats", i)
			}
			putUvarint(&buf, uint64(v))
		}
		if st.Completion < 0 {
			return nil, fmt.Errorf("census: shard row %d has negative completion", i)
		}
		putUvarint(&buf, uint64(st.Completion))
		putUvarint(&buf, uint64(len(rows[i])))
	}
	for _, r := range rows {
		buf.Write(r)
	}
	return buf.Bytes(), nil
}

// DecodeShardRows parses an encoded shard frame. Every declared count and
// length is validated against the remaining buffer before anything is
// allocated, so a truncated or hostile frame from the network path fails
// fast with an error instead of panicking or over-allocating.
func DecodeShardRows(data []byte) (*ShardRows, error) {
	b := data
	if len(b) < len(ShardFrameMagic) || string(b[:len(ShardFrameMagic)]) != ShardFrameMagic {
		return nil, fmt.Errorf("census: not a shard frame")
	}
	b = b[len(ShardFrameMagic):]
	if len(b) < 1 {
		return nil, fmt.Errorf("census: truncated shard frame header")
	}
	if b[0] != 0 {
		return nil, fmt.Errorf("census: unknown shard frame flags 0x%02x", b[0])
	}
	b = b[1:]

	round, b, err := takeUvarint(b, "shard round")
	if err != nil {
		return nil, err
	}
	lo, b, err := takeUvarint(b, "shard lo")
	if err != nil {
		return nil, err
	}
	width, b, err := takeUvarint(b, "shard width")
	if err != nil {
		return nil, err
	}
	if lo > 1<<31 || width > 1<<31 || lo+width > 1<<31 {
		return nil, fmt.Errorf("census: shard span [%d,+%d) beyond the decoder cap", lo, width)
	}

	grey, b, err := decodeGreylistV2(b)
	if err != nil {
		return nil, err
	}

	nRows, b, err := takeUvarint(b, "shard row count")
	if err != nil {
		return nil, err
	}
	// Every row needs at least 9 header bytes (slot + 7 stats + length)
	// before its payload; bound the count by the remaining buffer before
	// allocating, as loadRunV2 does for its row table.
	if nRows > uint64(len(b))/9+1 {
		return nil, fmt.Errorf("census: shard row count %d exceeds payload", nRows)
	}
	if nRows > 0 && width > 0 && width > (1<<31)/nRows {
		return nil, fmt.Errorf("census: shard claims %d x %d cells, beyond the decoder cap", nRows, width)
	}
	slots := make([]int, nRows)
	stats := make([]ShardStats, nRows)
	lengths := make([]uint64, nRows)
	var total uint64
	for i := uint64(0); i < nRows; i++ {
		var v uint64
		v, b, err = takeUvarint(b, "shard row slot")
		if err != nil {
			return nil, err
		}
		if v > 1<<31 {
			return nil, fmt.Errorf("census: shard row %d slot %d beyond the decoder cap", i, v)
		}
		slots[i] = int(v)
		counters := [...]*int{
			&stats[i].Sent, &stats[i].Echo, &stats[i].Errors,
			&stats[i].Timeouts, &stats[i].SourceDropped, &stats[i].FaultLost,
		}
		for _, dst := range counters {
			v, b, err = takeUvarint(b, "shard row stats")
			if err != nil {
				return nil, err
			}
			if v > 1<<62 {
				return nil, fmt.Errorf("census: shard row %d stats counter %d out of range", i, v)
			}
			*dst = int(v)
		}
		v, b, err = takeUvarint(b, "shard row completion")
		if err != nil {
			return nil, err
		}
		if v > 1<<62 {
			return nil, fmt.Errorf("census: shard row %d completion %d out of range", i, v)
		}
		stats[i].Completion = time.Duration(v)
		lengths[i], b, err = takeUvarint(b, "shard row length")
		if err != nil {
			return nil, err
		}
		// Per-entry validation against the remaining budget, so the sum
		// cannot wrap and the payload slicing below cannot panic.
		if lengths[i] > uint64(len(b)) {
			return nil, fmt.Errorf("census: shard row %d length %d exceeds payload", i, lengths[i])
		}
		total += lengths[i]
		if total > uint64(len(data)) {
			return nil, fmt.Errorf("census: shard rows (%d+ bytes) exceed payload (%d)", total, len(data))
		}
	}
	if total != uint64(len(b)) {
		return nil, fmt.Errorf("census: shard rows (%d bytes) disagree with payload (%d)", total, len(b))
	}

	rows := make([][]int32, nRows)
	for i := range rows {
		p := b[:lengths[i]]
		b = b[lengths[i]:]
		row := make([]int32, width)
		if err := decodeRowV2(p, row, int(i)); err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return &ShardRows{
		Round:    round,
		Lo:       int(lo),
		Hi:       int(lo + width),
		Slots:    slots,
		RTTus:    rows,
		Stats:    stats,
		Greylist: grey,
	}, nil
}

// Span is a contiguous target range [Lo, Hi).
type Span struct{ Lo, Hi int }

// ShardSpans splits n targets into spans of the given width (the last one
// may be narrower). A non-positive width yields one span covering all
// targets; n <= 0 yields none.
func ShardSpans(n, width int) []Span {
	if n <= 0 {
		return nil
	}
	if width <= 0 || width > n {
		width = n
	}
	spans := make([]Span, 0, (n+width-1)/width)
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		spans = append(spans, Span{Lo: lo, Hi: hi})
	}
	return spans
}

// UnknownVPSlotError reports a shard frame referencing a combined row
// slot that is out of range or not registered in the open round.
type UnknownVPSlotError struct {
	Round uint64
	Slot  int
	VPs   int
}

func (e *UnknownVPSlotError) Error() string {
	return fmt.Sprintf("census: shard frame for round %d references unknown VP slot %d (%d registered)",
		e.Round, e.Slot, e.VPs)
}

// ShardRangeError reports a shard frame whose target span falls outside
// the campaign's target list, or whose row width disagrees with its span.
type ShardRangeError struct {
	Round   uint64
	Lo, Hi  int
	Targets int
	// RowCells, when non-negative, is the cell count of the offending
	// row; -1 means the span itself is out of range.
	RowCells int
}

func (e *ShardRangeError) Error() string {
	if e.RowCells >= 0 {
		return fmt.Sprintf("census: shard frame for round %d has a %d-cell row for span [%d,%d)",
			e.Round, e.RowCells, e.Lo, e.Hi)
	}
	return fmt.Sprintf("census: shard frame for round %d spans [%d,%d) outside %d targets",
		e.Round, e.Lo, e.Hi, e.Targets)
}

// BeginRound opens a round for shard-wise folding: it validates the
// target list against earlier rounds, registers the round's vantage
// points (new VPs extend the combined union in first-seen order, exactly
// as FoldRun does; their fresh rows start all-NoSample), and returns the
// combined row slot of each VP, in vps order. Only one round may be open
// at a time, and FoldRun is rejected while one is.
func (cp *Campaign) BeginRound(round uint64, targets []netsim.IP, vps []platform.VP) ([]int, error) {
	if cp.shardOpen {
		return nil, fmt.Errorf("census: shard round %d still open", cp.shardRound)
	}
	if cp.combined == nil {
		cp.combined = &Combined{
			Targets: targets,
			RTTus:   make([][]int32, 0, len(vps)),
		}
	} else {
		if len(targets) != len(cp.combined.Targets) {
			return nil, fmt.Errorf("census: round %d has %d targets, campaign has %d",
				round, len(targets), len(cp.combined.Targets))
		}
		for ti, tgt := range targets {
			if tgt != cp.combined.Targets[ti] {
				return nil, fmt.Errorf("census: round %d target list diverges at index %d (%v vs %v)",
					round, ti, tgt, cp.combined.Targets[ti])
			}
		}
	}
	c := cp.combined
	c.Rounds++
	if cp.dirty == nil {
		cp.dirty = make([]uint32, (len(c.Targets)+31)/32)
	}
	slots := make([]int, len(vps))
	fresh := make([]bool, len(vps))
	for vi, vp := range vps {
		si, ok := cp.byID[vp.ID]
		if !ok {
			si = len(c.VPs)
			cp.byID[vp.ID] = si
			c.VPs = append(c.VPs, vp)
			c.RTTus = append(c.RTTus, nil)
			fresh[vi] = true
		}
		slots[vi] = si
	}
	// A fresh row starts all-NoSample: min-merging shard spans into it is
	// then byte-identical to FoldRun's copy of a full fresh row,
	// unanswered cells included. Rows are slab-carved as in FoldRun.
	if nFresh := countFresh(fresh); nFresh > 0 {
		rows := cp.newRows(nFresh, len(c.Targets))
		ri := 0
		for vi := range vps {
			if fresh[vi] {
				fillNoSample(rows[ri])
				c.RTTus[slots[vi]] = rows[ri]
				ri++
			}
		}
	}
	if len(cp.shardSlots) < len(c.VPs) {
		cp.shardSlots = make([]bool, len(c.VPs))
	}
	for i := range cp.shardSlots {
		cp.shardSlots[i] = false
	}
	for _, si := range slots {
		cp.shardSlots[si] = true
	}
	cp.shardRound = round
	cp.shardOpen = true
	return slots, nil
}

// FoldShard merges a partial result into the open round: per-cell
// minimum into the combined matrix over the frame's span, set union into
// the campaign greylist, dirty bits for every improved or newly answered
// cell (the same bits FoldRun would set).
//
// The per-cell min is commutative, associative, and idempotent, so
// shards may arrive in any order — interleaved across vantage points,
// out of target order, or duplicated by a re-lease after an agent loss —
// and the folded matrix is independent of arrival order
// (TestFoldShardOrderInvariance). A frame referencing a slot that is not
// registered in the open round fails with *UnknownVPSlotError; a span or
// row width outside the target list fails with *ShardRangeError. Either
// way the campaign is untouched: a frame folds whole or not at all.
// FoldShard must not run concurrently with itself or TakeDirty.
func (cp *Campaign) FoldShard(sr *ShardRows) error {
	if !cp.shardOpen {
		return fmt.Errorf("census: no shard round open (frame for round %d)", sr.Round)
	}
	if sr.Round != cp.shardRound {
		return fmt.Errorf("census: shard frame for round %d, open round is %d", sr.Round, cp.shardRound)
	}
	c := cp.combined
	nT := len(c.Targets)
	width := sr.Hi - sr.Lo
	if sr.Lo < 0 || width < 0 || sr.Hi > nT {
		return &ShardRangeError{Round: sr.Round, Lo: sr.Lo, Hi: sr.Hi, Targets: nT, RowCells: -1}
	}
	if len(sr.RTTus) != len(sr.Slots) {
		return fmt.Errorf("census: shard frame has %d rows for %d slots", len(sr.RTTus), len(sr.Slots))
	}
	// Validate everything before mutating anything.
	for i, slot := range sr.Slots {
		if slot < 0 || slot >= len(c.VPs) || !cp.shardSlots[slot] {
			return &UnknownVPSlotError{Round: sr.Round, Slot: slot, VPs: len(c.VPs)}
		}
		if len(sr.RTTus[i]) != width {
			return &ShardRangeError{Round: sr.Round, Lo: sr.Lo, Hi: sr.Hi, Targets: nT, RowCells: len(sr.RTTus[i])}
		}
	}
	for i, slot := range sr.Slots {
		src := sr.RTTus[i]
		dst := c.RTTus[slot][sr.Lo:sr.Hi]
		word, mask := sr.Lo>>5, uint32(0)
		for t, v := range src {
			if v < 0 {
				continue
			}
			if dst[t] < 0 || v < dst[t] {
				dst[t] = v
				gt := sr.Lo + t
				if w := gt >> 5; w != word {
					cp.orDirty(word, mask)
					word, mask = w, 0
				}
				mask |= 1 << uint(gt&31)
			}
		}
		cp.orDirty(word, mask)
	}
	if sr.Greylist != nil {
		cp.grey.Merge(sr.Greylist)
	}
	return nil
}

// FinishRound closes the open shard round, folding its health record
// into the campaign summary (as FoldRun does for a whole run).
func (cp *Campaign) FinishRound(h RunHealth) error {
	if !cp.shardOpen {
		return fmt.Errorf("census: no shard round open")
	}
	cp.shardOpen = false
	cp.health.Add(h)
	// A shard round folds frame by frame; the round counts as folded
	// when it closes. Fold latency for this path is the coordinator's
	// per-frame shard-fold histogram, not FoldSeconds.
	if m := cp.cfg.Metrics; m != nil {
		m.RoundsFolded.Inc()
		m.GreylistSize.Set(float64(cp.grey.Len()))
	}
	return nil
}

// BuildRunHealth folds per-VP records into a round health summary
// exactly as the in-process executor does; exported so the cluster
// coordinator reports distributed rounds in the same shape.
func BuildRunHealth(round uint64, perVP []VPHealth, rowSamples []int) RunHealth {
	return buildHealth(round, perVP, rowSamples)
}
