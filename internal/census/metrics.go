package census

import (
	"time"

	"anycastmap/internal/obs"
)

// Metrics is the campaign/analyzer instrument set, registered once per
// process and shared by every Campaign a daemon builds (a refresher
// builds a fresh Campaign per snapshot; the counters must outlive each
// one to be a usable time series). All observation helpers are nil-safe
// so campaigns without metrics pay a single pointer test.
type Metrics struct {
	// RoundsFolded counts census rounds folded into a combined matrix,
	// whether by FoldRun or the distributed shard path's FinishRound.
	RoundsFolded *obs.Counter
	// FoldSeconds is the latency of folding one finished round.
	FoldSeconds *obs.Histogram
	// AnalyzeSeconds is the latency of one analysis pass — an
	// incremental AnalyzeDirty or a batch AnalyzeAll.
	AnalyzeSeconds *obs.Histogram
	// DirtyTargets is the dirty-set size of the most recent
	// incremental analysis.
	DirtyTargets *obs.Gauge
	// GreylistSize is the campaign greylist size after the most recent
	// fold.
	GreylistSize *obs.Gauge
	// Analyses counts per-target analyses; CertHits the ones decided by
	// revalidating a cached detection certificate, FullScans the ones
	// that paid the full detection pass. CertHits + FullScans ==
	// Analyses, mirroring AnalyzerStats.
	Analyses  *obs.Counter
	CertHits  *obs.Counter
	FullScans *obs.Counter
}

// NewMetrics registers the census series on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		RoundsFolded:   r.Counter("anycastmap_census_rounds_folded_total", "Census rounds folded into the combined min-RTT matrix."),
		FoldSeconds:    r.Histogram("anycastmap_census_fold_seconds", "Latency of folding one finished round into the combined matrix.", obs.FastBuckets),
		AnalyzeSeconds: r.Histogram("anycastmap_census_analyze_seconds", "Latency of one analysis pass (incremental dirty-set or batch).", obs.DefBuckets),
		DirtyTargets:   r.Gauge("anycastmap_census_dirty_targets", "Dirty-set size of the most recent incremental analysis."),
		GreylistSize:   r.Gauge("anycastmap_census_greylist_size", "Campaign greylist size after the most recent fold."),
		Analyses:       r.Counter("anycastmap_census_analyses_total", "Per-target analyses run by the incremental engine."),
		CertHits:       r.Counter("anycastmap_census_cert_hits_total", "Analyses decided by revalidating a cached detection certificate."),
		FullScans:      r.Counter("anycastmap_census_full_scans_total", "Analyses that paid the full detection pass."),
	}
}

// foldObserved records one completed fold.
func (m *Metrics) foldObserved(d time.Duration, greylist int) {
	if m == nil {
		return
	}
	m.RoundsFolded.Inc()
	m.FoldSeconds.Observe(d.Seconds())
	m.GreylistSize.Set(float64(greylist))
}

// analyzeObserved records one incremental analysis pass; before/after
// are the analyzer's cumulative stats around it.
func (m *Metrics) analyzeObserved(d time.Duration, dirty int, before, after AnalyzerStats) {
	if m == nil {
		return
	}
	m.AnalyzeSeconds.Observe(d.Seconds())
	m.DirtyTargets.Set(float64(dirty))
	m.Analyses.Add(uint64(after.Analyzed - before.Analyzed))
	m.CertHits.Add(uint64(after.CertHits - before.CertHits))
	m.FullScans.Add(uint64(after.FullScans - before.FullScans))
}

// ObserveAnalysis records the wall time of a batch analysis (an
// AnalyzeAll outside the incremental engine, as the store's census
// source runs). Nil-safe.
func (m *Metrics) ObserveAnalysis(d time.Duration) {
	if m == nil {
		return
	}
	m.AnalyzeSeconds.Observe(d.Seconds())
}
