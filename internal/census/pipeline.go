package census

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
)

// pipeline.go — target-shard pipelined round execution.
//
// ExecuteContext materializes one full V×T round matrix before the fold:
// at paper scale (6.6M targets, hundreds of VPs) that transient is tens of
// gigabytes — far larger than the combined matrix it folds into. The
// pipelined executor instead works in (VP, target-span) units, the same
// unit the cluster coordinator leases to agents: workers probe span N+1
// while the folder min-merges span N into the combined matrix, so a
// round's working set beyond the combined matrix is a handful of spans.
//
// Byte-identity with the whole-round path follows from the fold algebra
// (per-cell min is commutative, associative, idempotent; greylist merge is
// a set union) plus the agent-path invariant that probing a span is
// byte-identical to the corresponding span of a full-row prober.Run (RTT
// draws are pure functions of (VP, target, round, seed, attempt)).
// TestCensusDeterminism pins pipelined-vs-whole-round digests.
//
// Failure semantics mirror the cluster coordinator rather than
// ExecuteContext: a failed unit is retried through the shared
// Config.Attempts/Backoff schedule and only successful probes fold, so a
// quarantined VP keeps the spans that succeeded and contributes nothing
// from the attempts that crashed. Under a zero-fault plan the two
// policies are indistinguishable (every unit succeeds on attempt 0).

// PipelineConfig tunes ExecuteRoundPipelined.
type PipelineConfig struct {
	// SpanTargets is the width in targets of one probe/fold unit. Zero
	// picks 16384: wide enough that per-unit setup amortizes, narrow
	// enough that one unit's working set — the span's slice of the world
	// (prefixes, host records, targets) plus its session slabs and RTT
	// row, ~1MB at this width — stays L2-resident. Wider spans measure
	// strictly slower on the census path (65536 costs ~15% more wall at
	// 758k targets purely from cache misses in the span resolve and
	// probe loop).
	SpanTargets int
	// Prefetch bounds how many probed spans may queue for the folder
	// before probing blocks; zero means twice the probe workers. The
	// round's transient memory is O((workers + Prefetch) × SpanTargets).
	Prefetch int
}

func (pc PipelineConfig) spanTargets() int {
	if pc.SpanTargets > 0 {
		return pc.SpanTargets
	}
	return 1 << 14
}

// EffectiveSpanTargets resolves the probe-span width defaulting applied
// by ExecuteRoundPipelined.
func (pc PipelineConfig) EffectiveSpanTargets() int { return pc.spanTargets() }

func (pc PipelineConfig) prefetch(workers int) int {
	if pc.Prefetch > 0 {
		return pc.Prefetch
	}
	return 2 * workers
}

// pipelineItem is one successfully probed unit on its way to the folder.
type pipelineItem struct {
	vi    int
	sr    *ShardRows
	stats prober.Stats
}

// ExecuteRoundPipelined probes one census round in (VP, target-span)
// units, folding each unit into the campaign as it completes instead of
// materializing the round's full V×T matrix. Per-VP probing errors
// degrade rather than abort, exactly as ExecuteRound: failed units retry
// on the census backoff schedule, a VP whose budget is exhausted is
// quarantined keeping its folded spans, and the joined error is returned
// alongside the round summary.
func (cp *Campaign) ExecuteRoundPipelined(ctx context.Context, w *netsim.World, vps []platform.VP, h *hitlist.Hitlist, blacklist *prober.Greylist, round uint64, pc PipelineConfig) (RoundSummary, error) {
	t0 := time.Now()
	targets := h.Targets()
	slots, err := cp.BeginRound(round, targets, vps)
	if err != nil {
		return RoundSummary{Round: round}, err
	}
	spans := ShardSpans(len(targets), pc.spanTargets())
	if len(spans) == 0 {
		spans = []Span{{Lo: 0, Hi: 0}} // zero-target round still reports VP health
	}
	cfg := cp.cfg.Census
	workers := cfg.EffectiveWorkers()

	// Per-VP state. Workers race on units of the same VP, so the retry
	// bookkeeping is atomic; the folder is a single goroutine and owns
	// the sample/probe/echo accumulation.
	nVP := len(vps)
	attempts := make([]atomic.Int32, nVP) // max (attempt index + 1) over units
	failed := make([]atomic.Bool, nVP)    // some unit needed a retry
	dropped := make([]atomic.Bool, nVP)   // retry budget exhausted
	var errMu sync.Mutex
	vpErrs := make([]error, nVP)

	rowSamples := make([]int, nVP)
	unitsDone := make([]int, nVP)
	probes := 0
	echo := make([]uint64, (len(targets)+63)/64)
	roundGrey := prober.NewGreylist()

	results := make(chan pipelineItem, pc.prefetch(workers))
	foldCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var foldErr error
	folderDone := make(chan struct{})
	go func() {
		defer close(folderDone)
		for item := range results {
			if foldErr != nil {
				continue // drain so workers never block on a dead folder
			}
			if err := cp.FoldShard(item.sr); err != nil {
				foldErr = err
				cancel()
				continue
			}
			roundGrey.Merge(item.sr.Greylist)
			probes += item.stats.Sent
			row := item.sr.RTTus[0]
			n := 0
			for t, v := range row {
				if v >= 0 {
					n++
					gt := item.sr.Lo + t
					echo[gt>>6] |= 1 << uint(gt&63)
				}
			}
			rowSamples[item.vi] += n
			unitsDone[item.vi]++
		}
	}()

	total := nVP * len(spans)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				unit := int(cursor.Add(1) - 1)
				if unit >= total || foldCtx.Err() != nil {
					return
				}
				vi := unit / len(spans)
				sp := spans[unit%len(spans)]
				if dropped[vi].Load() {
					continue
				}
				cp.probeUnit(foldCtx, w, vps[vi], slots[vi], vi, targets, sp, blacklist, round,
					attempts, failed, dropped, &errMu, vpErrs, results)
			}
		}()
	}
	wg.Wait()
	close(results)
	<-folderDone

	perVP := make([]VPHealth, nVP)
	for vi, vp := range vps {
		vh := VPHealth{VP: vp.Name, Attempts: int(attempts[vi].Load())}
		switch {
		case dropped[vi].Load():
			vh.Quarantined = true
			errMu.Lock()
			if vpErrs[vi] != nil {
				vh.Err = errors.Unwrap(vpErrs[vi]).Error()
			}
			errMu.Unlock()
		case vh.Attempts == 0:
			// Cancelled before this VP's first unit ran.
			vh.Skipped = true
		case foldCtx.Err() != nil && unitsDone[vi] < len(spans):
			// The round was aborted mid-flight: probed spans are folded
			// but the VP did not complete, matching the coordinator's
			// aborted-round accounting.
			vh.Err = "round aborted"
		default:
			vh.Recovered = failed[vi].Load() && vh.Attempts > 1
		}
		perVP[vi] = vh
	}
	health := BuildRunHealth(round, perVP, rowSamples)
	if err := cp.FinishRound(health); err != nil {
		return RoundSummary{Round: round}, err
	}
	if foldErr != nil {
		return RoundSummary{Round: round}, foldErr
	}

	echoTargets := 0
	for _, w := range echo {
		echoTargets += bits.OnesCount64(w)
	}
	sum := RoundSummary{
		Round:       round,
		VPs:         nVP,
		Probes:      probes,
		EchoTargets: echoTargets,
		GreylistLen: roundGrey.Len(),
		Health:      health,
		Duration:    time.Since(t0),
	}
	errMu.Lock()
	joined := errors.Join(append(append([]error{}, vpErrs...), ctx.Err())...)
	errMu.Unlock()
	return sum, joined
}

// probeUnit probes one (VP, span) unit with the census retry schedule and
// ships the successful result to the folder. The row is built exactly as
// the cluster agent builds a leased shard — same sink filter, same RTT
// clamp — so the folded span is byte-identical to the corresponding span
// of the row ExecuteContext would have produced.
func (cp *Campaign) probeUnit(ctx context.Context, w *netsim.World, vp platform.VP, slot, vi int, targets []netsim.IP, sp Span, blacklist *prober.Greylist, round uint64, attempts []atomic.Int32, failed, dropped []atomic.Bool, errMu *sync.Mutex, vpErrs []error, results chan<- pipelineItem) {
	cfg := cp.cfg.Census
	span := targets[sp.Lo:sp.Hi]
	// The prober hands the sink each sample's span index, so the row is
	// filled positionally — no per-unit target→index map, whose
	// construction would dominate a narrow span's probing time and whose
	// garbage would swamp the round.
	row := emptyRow(len(span))
	sink := func(ti int, smp record.Sample) {
		if smp.Kind != netsim.ReplyEcho {
			return
		}
		us := smp.RTT.Microseconds()
		if us > 1<<30 {
			us = 1 << 30
		}
		row[ti] = int32(us)
	}

	var stats prober.Stats
	var grey *prober.Greylist
	var err error
	tried := 0
	for attempt := 0; attempt < cfg.Attempts(); attempt++ {
		if dropped[vi].Load() {
			return
		}
		if attempt > 0 && !sleepBackoff(ctx, cfg.Backoff(attempt)) {
			break
		}
		tried = attempt + 1
		raiseAttempts(&attempts[vi], int32(tried))
		stats, grey, err = prober.RunIndexed(w, vp, span, blacklist,
			prober.Config{Rate: cfg.Rate, Round: round, Seed: cfg.Seed, Attempt: attempt},
			sink)
		if err == nil {
			break
		}
		failed[vi].Store(true)
		if ctx.Err() != nil {
			break
		}
	}
	if err != nil || tried == 0 {
		if err != nil && ctx.Err() == nil && !dropped[vi].Swap(true) {
			errMu.Lock()
			vpErrs[vi] = fmt.Errorf("census: VP %s quarantined after %d attempts: %w",
				vp.Name, attempts[vi].Load(), err)
			errMu.Unlock()
		}
		return
	}
	results <- pipelineItem{
		vi: vi,
		sr: &ShardRows{
			Round:    round,
			Lo:       sp.Lo,
			Hi:       sp.Hi,
			Slots:    []int{slot},
			RTTus:    [][]int32{row},
			Stats:    []ShardStats{ShardStatsOf(stats)},
			Greylist: grey,
		},
		stats: stats,
	}
}

// raiseAttempts raises the per-VP attempt high-water mark.
func raiseAttempts(a *atomic.Int32, v int32) {
	for {
		old := a.Load()
		if old >= v || a.CompareAndSwap(old, v) {
			return
		}
	}
}
