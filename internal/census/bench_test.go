package census

import (
	"bytes"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// synthRuns fabricates census runs with a deterministic sparse latency
// matrix: Combine's cost depends only on the matrix shape, not on how the
// samples were measured, so the benchmark skips the probing entirely.
func synthRuns(rounds, nVPs, nTargets int) []*Run {
	targets := make([]netsim.IP, nTargets)
	for t := range targets {
		targets[t] = netsim.IP(1<<24 + t<<8 + 1)
	}
	vps := make([]platform.VP, nVPs)
	for v := range vps {
		// Spread the hosts over the globe so the analysis benchmarks see
		// non-degenerate disk geometry (co-located VPs would make every
		// target trivially unicast).
		vps[v] = platform.VP{ID: v, Name: "vp", LoadFactor: 1,
			Loc: geo.Coord{Lat: float64(v*29%140) - 70, Lon: float64(v*67%360) - 180}}
	}
	runs := make([]*Run, rounds)
	for r := range runs {
		rttus := make([][]int32, nVPs)
		for v := range rttus {
			row := make([]int32, nTargets)
			for t := range row {
				// ~60% of cells hold a sample, like a real census row.
				h := detrand.Hash64(uint64(r), uint64(v), uint64(t))
				if h%10 < 6 {
					row[t] = int32(h % 200_000)
				} else {
					row[t] = noSample
				}
			}
			rttus[v] = row
		}
		runs[r] = &Run{Round: uint64(r + 1), VPs: vps, Targets: targets, RTTus: rttus, Greylist: prober.NewGreylist()}
	}
	return runs
}

// BenchmarkCombine measures the minimum-RTT merge of a four-census campaign
// at a 200 VP x 20k target scale.
func BenchmarkCombine(b *testing.B) {
	runs := synthRuns(4, 200, 20_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := Combine(runs...)
		if err != nil {
			b.Fatal(err)
		}
		if len(c.VPs) != 200 {
			b.Fatal("lost VPs in combine")
		}
	}
}

// BenchmarkStreamCombine measures the streaming fold of the same campaign:
// the bounded-memory path must not cost more than the batch merge.
func BenchmarkStreamCombine(b *testing.B) {
	runs := synthRuns(4, 200, 20_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := StreamCombine(CampaignConfig{}, len(runs), func(j int) (*Run, error) { return runs[j], nil })
		if err != nil {
			b.Fatal(err)
		}
		if len(c.VPs) != 200 {
			b.Fatal("lost VPs in fold")
		}
	}
}

// BenchmarkAnalyzeAll measures the work-stealing detection + geolocation
// pass over a combined four-census campaign.
func BenchmarkAnalyzeAll(b *testing.B) {
	runs := synthRuns(4, 120, 5_000)
	c, err := Combine(runs...)
	if err != nil {
		b.Fatal(err)
	}
	db := cities.Default()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := AnalyzeAll(db, c, core.Options{}, 2, 0); len(out) == 0 {
			b.Fatal("no anycast detected")
		}
	}
}

// BenchmarkAnalyzerUpdateDirty5pct measures one incremental round against a
// warm analyzer: 5% of the targets are dirty and every one carries a cached
// detection certificate, so the cost is the O(n) revalidation path rather
// than the full pairwise scan AnalyzeAll pays.
func BenchmarkAnalyzerUpdateDirty5pct(b *testing.B) {
	runs := synthRuns(4, 120, 5_000)
	c, err := Combine(runs...)
	if err != nil {
		b.Fatal(err)
	}
	a := NewAnalyzer(cities.Default(), AnalyzerConfig{})
	all := make([]int, len(c.Targets))
	for t := range all {
		all[t] = t
	}
	a.Update(c, all) // warm the certificate cache
	dirty := make([]int, 0, len(c.Targets)/20+1)
	for t := 0; t < len(c.Targets); t += 20 {
		dirty = append(dirty, t)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Update(c, dirty)
	}
}

// BenchmarkSaveRunV2 measures the columnar encoder at one-census scale.
func BenchmarkSaveRunV2(b *testing.B) {
	run := synthRuns(1, 200, 20_000)[0]
	var buf bytes.Buffer
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := SaveRun(&buf, run); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkLoadRunV2 measures the columnar decoder at one-census scale.
func BenchmarkLoadRunV2(b *testing.B) {
	run := synthRuns(1, 200, 20_000)[0]
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LoadRun(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaveRunLegacy and BenchmarkLoadRunLegacy keep the gob+flate
// numbers visible next to the v2 ones.
func BenchmarkSaveRunLegacy(b *testing.B) {
	run := synthRuns(1, 200, 20_000)[0]
	var buf bytes.Buffer
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := SaveRunLegacy(&buf, run); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkLoadRunLegacy(b *testing.B) {
	run := synthRuns(1, 200, 20_000)[0]
	var buf bytes.Buffer
	if err := SaveRunLegacy(&buf, run); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LoadRun(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
