package census

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// The v2 run format is the census-scale version of Table 1's
// textual-to-binary rewrite, applied a second time: gob+flate spends
// reflection on every row and funnels the whole matrix through one
// single-threaded DEFLATE stream, which is what made run persistence the
// slowest stage of a large campaign. v2 is columnar and explicit instead:
//
//	magic   "ACMR2\n"
//	flags   byte (reserved, 0)
//	meta    uvarint length + gob(runMetaV2)   — small, map-free, stable
//	grey    uvarint count, then per entry: uvarint IP delta (sorted
//	        ascending) + kind byte
//	rows    uvarint nVP, uvarint nTargets, uvarint per-row encoded
//	        lengths, then the concatenated row payloads
//
// Each row is independently decodable — a sample count followed by
// (uvarint target-index gap, uvarint RTT µs) pairs, the delta/varint
// technique of internal/record's compact format — so encode and decode
// both parallelize across GOMAXPROCS row workers. Every byte is a pure
// function of the run (the greylist is sorted, the meta holds no maps),
// so saving the same run twice yields identical files; the determinism
// test compares saved bytes directly.

const runMagicV2 = "ACMR2\n"

// runMetaV2 is the small gob-encoded head of a v2 file: everything except
// the matrix and the greylist. It contains no maps, so its gob bytes are
// deterministic.
type runMetaV2 struct {
	Round   uint64
	VPs     []platform.VP
	Targets []netsim.IP
	Stats   []prober.Stats
	Health  RunHealth
}

// saveRunV2 writes the v2 columnar encoding of the run.
func saveRunV2(w io.Writer, r *Run) error {
	var buf bytes.Buffer
	buf.WriteString(runMagicV2)
	buf.WriteByte(0) // flags

	var meta bytes.Buffer
	if err := gob.NewEncoder(&meta).Encode(runMetaV2{
		Round:   r.Round,
		VPs:     r.VPs,
		Targets: r.Targets,
		Stats:   r.Stats,
		Health:  r.Health,
	}); err != nil {
		return fmt.Errorf("census: encode run meta: %w", err)
	}
	putUvarint(&buf, uint64(meta.Len()))
	buf.Write(meta.Bytes())

	encodeGreylistV2(&buf, r.Greylist)

	rows, err := encodeRowsV2(r.RTTus, len(r.Targets))
	if err != nil {
		return err
	}
	putUvarint(&buf, uint64(len(r.RTTus)))
	putUvarint(&buf, uint64(len(r.Targets)))
	for _, row := range rows {
		putUvarint(&buf, uint64(len(row)))
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("census: %w", err)
	}
	for _, row := range rows {
		if _, err := w.Write(row); err != nil {
			return fmt.Errorf("census: %w", err)
		}
	}
	return nil
}

// encodeGreylistV2 appends the sorted delta-encoded greylist section.
func encodeGreylistV2(buf *bytes.Buffer, g *prober.Greylist) {
	snap := g.Snapshot()
	ips := make([]netsim.IP, 0, len(snap))
	for ip := range snap {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
	putUvarint(buf, uint64(len(ips)))
	prev := netsim.IP(0)
	for _, ip := range ips {
		putUvarint(buf, uint64(ip-prev))
		buf.WriteByte(byte(snap[ip]))
		prev = ip
	}
}

// Row payload modes. A census row is dense (~60-80% of targets answer),
// so listing a varint gap per sample wastes ~1 byte/sample; a presence
// bitmap costs a fixed nTargets/8 bytes instead. Sparse rows (quarantined
// VPs, heavy loss) flip back to the gap list. The mode is a pure function
// of the row contents, so the choice never breaks byte determinism.
const (
	rowModeGaps   = 0 // uvarint (gap, value) pairs
	rowModeBitmap = 1 // presence bitmap, then values in index order
)

// encodeRowsV2 encodes every matrix row in parallel. Row payloads are
// independent, so the bytes do not depend on the worker count.
func encodeRowsV2(rttus [][]int32, nTargets int) ([][]byte, error) {
	for vi, row := range rttus {
		if len(row) != nTargets {
			return nil, fmt.Errorf("census: row %d has %d cells for %d targets", vi, len(row), nTargets)
		}
	}
	rows := make([][]byte, len(rttus))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rttus) {
		workers = len(rttus)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				vi := int(next.Add(1) - 1)
				if vi >= len(rttus) {
					return
				}
				rows[vi] = encodeRowV2(rttus[vi], nTargets)
			}
		}()
	}
	wg.Wait()
	return rows, nil
}

// encodeRowV2 encodes one row: mode byte, uvarint sample count, then the
// mode's payload. RTT values above the pipeline's 2^30 µs clamp are
// clamped again here so re-encoding a foreign (legacy) run stays within
// the decoder's bound.
func encodeRowV2(row []int32, nTargets int) []byte {
	n := 0
	for _, v := range row {
		if v >= 0 {
			n++
		}
	}
	bitmapLen := (nTargets + 7) / 8
	var tmp [binary.MaxVarintLen64]byte
	if bitmapLen <= n {
		// Dense: presence bitmap + values in index order (~3 bytes per
		// sample at census RTT magnitudes, amortized bitmap well under
		// a byte).
		out := make([]byte, 0, 1+binary.MaxVarintLen64+bitmapLen+n*4)
		out = append(out, rowModeBitmap)
		out = binary.AppendUvarint(out, uint64(n))
		bitmap := make([]byte, bitmapLen)
		for ti, v := range row {
			if v >= 0 {
				bitmap[ti>>3] |= 1 << (ti & 7)
			}
		}
		out = append(out, bitmap...)
		for _, v := range row {
			if v < 0 {
				continue
			}
			if v > 1<<30 {
				v = 1 << 30
			}
			m := binary.PutUvarint(tmp[:], uint64(v))
			out = append(out, tmp[:m]...)
		}
		return out
	}
	// Sparse: delta/varint (gap, value) pairs, the compact-format
	// technique of internal/record.
	out := make([]byte, 0, 1+binary.MaxVarintLen64+n*5)
	out = append(out, rowModeGaps)
	out = binary.AppendUvarint(out, uint64(n))
	prev := -1
	for ti, v := range row {
		if v < 0 {
			continue
		}
		if v > 1<<30 {
			v = 1 << 30
		}
		out = binary.AppendUvarint(out, uint64(ti-prev))
		m := binary.PutUvarint(tmp[:], uint64(v))
		out = append(out, tmp[:m]...)
		prev = ti
	}
	return out
}

// loadRunV2 decodes a v2 run; data starts immediately after the magic.
func loadRunV2(data []byte) (*Run, error) {
	b := data
	if len(b) < 1 {
		return nil, fmt.Errorf("census: truncated v2 run header")
	}
	if b[0] != 0 {
		return nil, fmt.Errorf("census: unknown v2 flags 0x%02x", b[0])
	}
	b = b[1:]

	metaLen, b, err := takeUvarint(b, "meta length")
	if err != nil {
		return nil, err
	}
	if metaLen > uint64(len(b)) {
		return nil, fmt.Errorf("census: v2 meta length %d exceeds payload", metaLen)
	}
	var meta runMetaV2
	if err := gob.NewDecoder(bytes.NewReader(b[:metaLen])).Decode(&meta); err != nil {
		return nil, fmt.Errorf("census: decode run meta: %w", err)
	}
	b = b[metaLen:]

	grey, b, err := decodeGreylistV2(b)
	if err != nil {
		return nil, err
	}

	nVP, b, err := takeUvarint(b, "row count")
	if err != nil {
		return nil, err
	}
	nT, b, err := takeUvarint(b, "target count")
	if err != nil {
		return nil, err
	}
	if nVP != uint64(len(meta.VPs)) {
		return nil, fmt.Errorf("census: run has %d matrix rows for %d VPs", nVP, len(meta.VPs))
	}
	if nT != uint64(len(meta.Targets)) {
		return nil, fmt.Errorf("census: run has %d-cell rows for %d targets", nT, len(meta.Targets))
	}
	// The guard below caps per-row allocation, but an adversarial header
	// could still claim huge counts; bound them by the payload size first.
	if nVP > uint64(len(b)) {
		return nil, fmt.Errorf("census: v2 row table (%d rows) exceeds payload", nVP)
	}
	lengths := make([]uint64, nVP)
	var totalRows uint64
	for i := range lengths {
		lengths[i], b, err = takeUvarint(b, "row length")
		if err != nil {
			return nil, err
		}
		// Validate each declared length as it arrives: a hostile header
		// could otherwise overflow the uint64 running sum (wrapping past
		// the post-loop check) and panic the row slicing below. Each
		// length is bounded by the remaining payload and the sum by the
		// whole input, so the sum can never wrap.
		if lengths[i] > uint64(len(b)) {
			return nil, fmt.Errorf("census: v2 row %d length %d exceeds payload", i, lengths[i])
		}
		totalRows += lengths[i]
		if totalRows > uint64(len(data)) {
			return nil, fmt.Errorf("census: v2 rows (%d+ bytes) exceed payload (%d)", totalRows, len(data))
		}
	}
	if totalRows > uint64(len(b)) {
		return nil, fmt.Errorf("census: v2 rows (%d bytes) exceed payload (%d)", totalRows, len(b))
	}

	if totalRows < uint64(len(b)) {
		return nil, fmt.Errorf("census: v2 run has %d trailing bytes", uint64(len(b))-totalRows)
	}
	// Cap the dense-matrix allocation before trusting the header: 2^31
	// cells (8 GiB) is far above any real campaign and far below what a
	// forged header could otherwise demand.
	if nVP > 0 && nT > (1<<31)/nVP {
		return nil, fmt.Errorf("census: v2 run claims %d x %d cells, beyond the decoder cap", nVP, nT)
	}

	// Slice each row's payload, then decode rows in parallel into one
	// contiguous backing slab (a single allocation for the whole dense
	// matrix; loaded rows are read-only downstream).
	payloads := make([][]byte, nVP)
	for i, l := range lengths {
		payloads[i], b = b[:l], b[l:]
	}
	slab := make([]int32, nVP*nT)
	rttus := make([][]int32, nVP)
	for vi := range rttus {
		rttus[vi] = slab[uint64(vi)*nT : uint64(vi+1)*nT : uint64(vi+1)*nT]
	}
	decErrs := make([]error, nVP)
	workers := runtime.GOMAXPROCS(0)
	if workers > int(nVP) {
		workers = int(nVP)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				vi := int(next.Add(1) - 1)
				if vi >= int(nVP) {
					return
				}
				decErrs[vi] = decodeRowV2(payloads[vi], rttus[vi], vi)
			}
		}()
	}
	wg.Wait()
	for _, err := range decErrs {
		if err != nil {
			return nil, err
		}
	}

	return &Run{
		Round:    meta.Round,
		VPs:      meta.VPs,
		Targets:  meta.Targets,
		RTTus:    rttus,
		Stats:    meta.Stats,
		Greylist: grey,
		Health:   meta.Health,
	}, nil
}

// decodeRowV2 expands one row payload into the dense destination row.
func decodeRowV2(p []byte, row []int32, vi int) error {
	nTargets := len(row)
	if len(p) < 1 {
		return fmt.Errorf("census: row %d: truncated mode byte", vi)
	}
	mode := p[0]
	p = p[1:]
	n, p, err := takeUvarint(p, "row sample count")
	if err != nil {
		return fmt.Errorf("census: row %d: %w", vi, err)
	}
	if n > uint64(nTargets) {
		return fmt.Errorf("census: row %d claims %d samples for %d targets", vi, n, nTargets)
	}

	switch mode {
	case rowModeBitmap:
		bitmapLen := (nTargets + 7) / 8
		if len(p) < bitmapLen {
			return fmt.Errorf("census: row %d: truncated bitmap", vi)
		}
		bitmap := p[:bitmapLen]
		p = p[bitmapLen:]
		// Bits past nTargets in the last bitmap byte must be clear, or
		// two encodings of the same row could differ. Checked up front so
		// the set-bit walk below never indexes past the row.
		if nTargets%8 != 0 && bitmap[bitmapLen-1]>>(nTargets%8) != 0 {
			return fmt.Errorf("census: row %d bitmap has bits past the last target", vi)
		}
		// Prefill absent cells with one memmove and visit only set bits:
		// the old walk branched on every target and paid a fastUvarint
		// call per sample, which made v2 decode slower than gob+flate at
		// census scale. Here whole absent bytes cost one compare, and the
		// one- and two-byte varints (every census-scale RTT in µs after
		// zigzag-free delay encoding) decode inline.
		fillNoSample(row)
		seen := uint64(0)
		for bi, bb := range bitmap {
			if bb == 0 {
				continue
			}
			base := bi << 3
			for ; bb != 0; bb &= bb - 1 {
				ti := base + bits.TrailingZeros8(bb)
				var us uint64
				switch {
				case len(p) >= 1 && p[0] < 0x80:
					us = uint64(p[0])
					p = p[1:]
				case len(p) >= 2 && p[1] < 0x80:
					us = uint64(p[0]&0x7F) | uint64(p[1])<<7
					p = p[2:]
				default:
					var err error
					us, p, err = fastUvarint(p)
					if err != nil {
						return fmt.Errorf("census: row %d: truncated sample delay", vi)
					}
				}
				if us > 1<<30 {
					return fmt.Errorf("census: row %d sample delay %d out of range", vi, us)
				}
				row[ti] = int32(us)
				seen++
			}
		}
		if seen != n {
			return fmt.Errorf("census: row %d bitmap has %d samples, header says %d", vi, seen, n)
		}
	case rowModeGaps:
		// Same trick as bitmap mode: one bulk prefill, then only sampled
		// cells are touched (the old inner loops wrote every skipped cell
		// individually).
		fillNoSample(row)
		ti := -1
		for s := uint64(0); s < n; s++ {
			gap, rest, err := fastUvarint(p)
			if err != nil {
				return fmt.Errorf("census: row %d: truncated sample gap", vi)
			}
			us, rest, err := fastUvarint(rest)
			if err != nil {
				return fmt.Errorf("census: row %d: truncated sample delay", vi)
			}
			p = rest
			if gap == 0 || gap > uint64(nTargets) {
				return fmt.Errorf("census: row %d has invalid sample gap %d", vi, gap)
			}
			ti += int(gap)
			if ti >= nTargets {
				return fmt.Errorf("census: row %d sample index %d out of range", vi, ti)
			}
			if us > 1<<30 {
				return fmt.Errorf("census: row %d sample delay %d out of range", vi, us)
			}
			row[ti] = int32(us)
		}
	default:
		return fmt.Errorf("census: row %d has unknown mode %d", vi, mode)
	}
	if len(p) != 0 {
		return fmt.Errorf("census: row %d has %d trailing bytes", vi, len(p))
	}
	return nil
}

// fastUvarint is binary.Uvarint with the one- to four-byte cases (every
// gap and every census-scale RTT in µs) inlined ahead of the generic
// loop.
func fastUvarint(p []byte) (uint64, []byte, error) {
	switch {
	case len(p) >= 1 && p[0] < 0x80:
		return uint64(p[0]), p[1:], nil
	case len(p) >= 2 && p[1] < 0x80:
		return uint64(p[0]&0x7F) | uint64(p[1])<<7, p[2:], nil
	case len(p) >= 3 && p[2] < 0x80:
		return uint64(p[0]&0x7F) | uint64(p[1]&0x7F)<<7 | uint64(p[2])<<14, p[3:], nil
	case len(p) >= 4 && p[3] < 0x80:
		return uint64(p[0]&0x7F) | uint64(p[1]&0x7F)<<7 | uint64(p[2]&0x7F)<<14 | uint64(p[3])<<21, p[4:], nil
	}
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("census: truncated or invalid uvarint")
	}
	return v, p[n:], nil
}

// decodeGreylistV2 parses the sorted delta-encoded greylist section.
func decodeGreylistV2(b []byte) (*prober.Greylist, []byte, error) {
	count, b, err := takeUvarint(b, "greylist count")
	if err != nil {
		return nil, nil, err
	}
	// Every entry needs at least 2 bytes (delta + kind).
	if count > uint64(len(b))/2+1 {
		return nil, nil, fmt.Errorf("census: greylist count %d exceeds payload", count)
	}
	snap := make(map[netsim.IP]netsim.ReplyKind, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		var delta uint64
		delta, b, err = takeUvarint(b, "greylist delta")
		if err != nil {
			return nil, nil, err
		}
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("census: truncated greylist kind")
		}
		kind := netsim.ReplyKind(b[0])
		b = b[1:]
		ip := prev + delta
		if ip > 1<<32-1 {
			return nil, nil, fmt.Errorf("census: greylist address overflows IPv4")
		}
		snap[netsim.IP(ip)] = kind
		prev = ip
	}
	return prober.FromSnapshot(snap), b, nil
}

// putUvarint appends a uvarint to the buffer.
func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

// takeUvarint consumes one uvarint from the front of b.
func takeUvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("census: truncated or invalid %s", what)
	}
	return v, b[n:], nil
}
