package census

import (
	"bytes"
	"context"
	"testing"

	"anycastmap/internal/netsim"
	"anycastmap/internal/prober"
)

// TestFoldRunMatchesCombine folds the testbed rounds through a Campaign
// and checks the result cell-for-cell against the batch Combine of the
// same runs, plus the greylist union and the retained-run bookkeeping.
func TestFoldRunMatchesCombine(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)
	batch, err := Combine(r1, r2)
	if err != nil {
		t.Fatal(err)
	}

	cp := NewCampaign(CampaignConfig{FoldWorkers: 3, ShardTargets: 97, RetainRuns: true})
	if cp.Combined() != nil {
		t.Fatal("empty campaign has a combined matrix")
	}
	for _, r := range []*Run{r1, r2} {
		if err := cp.FoldRun(r); err != nil {
			t.Fatal(err)
		}
	}
	got := cp.Combined()

	if got.Rounds != batch.Rounds {
		t.Fatalf("rounds %d, want %d", got.Rounds, batch.Rounds)
	}
	if len(got.VPs) != len(batch.VPs) {
		t.Fatalf("VP union %d, want %d", len(got.VPs), len(batch.VPs))
	}
	for i := range got.VPs {
		if got.VPs[i] != batch.VPs[i] {
			t.Fatalf("VP order diverges at %d: %v vs %v", i, got.VPs[i], batch.VPs[i])
		}
	}
	for v := range got.RTTus {
		if !bytes.Equal(int32Bytes(got.RTTus[v]), int32Bytes(batch.RTTus[v])) {
			t.Fatalf("row %d differs from batch Combine", v)
		}
	}

	union := prober.NewGreylist()
	union.Merge(r1.Greylist)
	union.Merge(r2.Greylist)
	if cp.Greylist().Len() != union.Len() {
		t.Fatalf("greylist union %d, want %d", cp.Greylist().Len(), union.Len())
	}
	for ip, kind := range union.Snapshot() {
		if got, ok := cp.Greylist().Snapshot()[ip]; !ok || got != kind {
			t.Fatalf("greylist union missing %v (%d)", ip, kind)
		}
	}

	if len(cp.Runs()) != 2 {
		t.Fatalf("RetainRuns kept %d runs", len(cp.Runs()))
	}
	if cp.Health().Rounds != 2 {
		t.Fatalf("campaign health folded %d rounds", cp.Health().Rounds)
	}
}

func int32Bytes(row []int32) []byte {
	out := make([]byte, 0, len(row)*4)
	for _, v := range row {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

// TestFoldRunRejectsDivergentTargets mirrors Combine's target-list guard.
func TestFoldRunRejectsDivergentTargets(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	cp := NewCampaign(CampaignConfig{})
	if err := cp.FoldRun(r1); err != nil {
		t.Fatal(err)
	}
	short := &Run{Targets: r1.Targets[:1], VPs: r1.VPs, RTTus: r1.RTTus,
		Greylist: prober.NewGreylist()}
	if err := cp.FoldRun(short); err == nil {
		t.Error("mismatched target count accepted")
	}
	diverged := &Run{Targets: append([]netsim.IP(nil), r1.Targets...), VPs: r1.VPs,
		RTTus: r1.RTTus, Greylist: prober.NewGreylist()}
	diverged.Targets[3]++
	if err := cp.FoldRun(diverged); err == nil {
		t.Error("diverged target list accepted")
	}
}

// TestCampaignDiscardsRuns checks the memory contract: without
// RetainRuns, the campaign keeps no reference to folded runs.
func TestCampaignDiscardsRuns(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)
	cp := NewCampaign(CampaignConfig{})
	for _, r := range []*Run{r1, r2} {
		if err := cp.FoldRun(r); err != nil {
			t.Fatal(err)
		}
	}
	if cp.Runs() != nil {
		t.Fatal("campaign retained runs without RetainRuns")
	}
}

// TestCampaignOnRunHook checks the per-round hook sees every run, in
// order, after it folded.
func TestCampaignOnRunHook(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)
	var seen []uint64
	cp := NewCampaign(CampaignConfig{OnRun: func(r *Run) error {
		seen = append(seen, r.Round)
		return nil
	}})
	for _, r := range []*Run{r1, r2} {
		if err := cp.FoldRun(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 2 || seen[0] != r1.Round || seen[1] != r2.Round {
		t.Fatalf("hook saw rounds %v", seen)
	}
}

// TestCampaignExecuteRound runs a streaming round end-to-end and checks
// the summary against the folded state.
func TestCampaignExecuteRound(t *testing.T) {
	w, h, vps, _, _ := testbed(t)
	cp := NewCampaign(CampaignConfig{Census: Config{Seed: 9, RetryBackoff: -1}})
	sum, err := cp.ExecuteRound(context.Background(), w, vps[:12], h, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.VPs != 12 || sum.Probes == 0 || sum.EchoTargets == 0 {
		t.Fatalf("implausible summary %+v", sum)
	}
	c := cp.Combined()
	if c == nil || len(c.VPs) != 12 || c.Rounds != 1 {
		t.Fatal("round did not fold")
	}
}

// TestStreamCombine checks the one-shot streaming helper against the
// batch path.
func TestStreamCombine(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)
	batch, _ := Combine(r1, r2)
	runs := []*Run{r1, r2}
	got, err := StreamCombine(CampaignConfig{}, len(runs), func(i int) (*Run, error) {
		return runs[i], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range got.RTTus {
		if !bytes.Equal(int32Bytes(got.RTTus[v]), int32Bytes(batch.RTTus[v])) {
			t.Fatalf("row %d differs from batch Combine", v)
		}
	}
	if _, err := StreamCombine(CampaignConfig{}, 0, nil); err == nil {
		t.Error("empty stream accepted")
	}
}

// TestCombinedEchoTargetsMemoized pins the satellite: the memoized count
// equals a fresh scan.
func TestCombinedEchoTargetsMemoized(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)
	c, _ := Combine(r1, r2)
	want := 0
	for ti := range c.Targets {
		for v := range c.VPs {
			if c.RTTus[v][ti] >= 0 {
				want++
				break
			}
		}
	}
	if got := c.EchoTargets(); got != want {
		t.Fatalf("EchoTargets = %d, want %d", got, want)
	}
	if got := c.EchoTargets(); got != want {
		t.Fatalf("memoized EchoTargets = %d, want %d", got, want)
	}
}
