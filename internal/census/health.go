package census

import (
	"fmt"
	"sort"
)

// This file is the degraded-mode bookkeeping of the census. The paper's
// campaigns never ran on a healthy platform — PlanetLab attrition is why a
// census advertised as ~300 vantage points shipped with 240–270 (Fig. 12
// legend) — so a production census must report how it degraded, not just
// what it measured. RunHealth summarizes one census round's recovery
// story; CampaignHealth aggregates the rounds of one snapshot build so the
// serving layer can expose a degraded campaign to operators.

// VPHealth is the recovery record of one vantage point within a census.
type VPHealth struct {
	VP string `json:"vp"`
	// Attempts is how many probing attempts ran (1 for a clean pass).
	Attempts int `json:"attempts"`
	// Recovered marks a VP that failed at least once and then completed.
	Recovered bool `json:"recovered,omitempty"`
	// Quarantined marks a VP that exhausted its attempt budget; its row
	// holds whatever samples its attempts gathered.
	Quarantined bool `json:"quarantined,omitempty"`
	// Skipped marks a VP that never ran (census cancelled first).
	Skipped bool `json:"skipped,omitempty"`
	// Err is the final probing error, "" when the VP completed.
	Err string `json:"err,omitempty"`
}

// RunHealth summarizes how one census round degraded and recovered.
type RunHealth struct {
	Round uint64 `json:"round"`
	// VPs is the round's vantage-point count, Completed how many
	// finished a full probing pass (first try or after retries).
	VPs       int `json:"vps"`
	Completed int `json:"completed"`
	// Retries is the total number of retry attempts across VPs.
	Retries int `json:"retries"`
	// Recovered counts VPs that failed at least once, then completed.
	Recovered int `json:"recovered"`
	// Quarantined lists the VPs that exhausted the attempt budget.
	Quarantined []string `json:"quarantined,omitempty"`
	// PartialRows counts quarantined rows that still carry samples;
	// EmptyRows counts rows with no samples at all (quarantined early,
	// or skipped on cancellation).
	PartialRows int `json:"partial_rows"`
	EmptyRows   int `json:"empty_rows"`
	// PerVP is the detailed per-vantage-point record, in run order.
	PerVP []VPHealth `json:"-"`
}

// Degraded reports whether the round lost any vantage point for good.
func (h RunHealth) Degraded() bool { return len(h.Quarantined) > 0 }

func (h RunHealth) String() string {
	return fmt.Sprintf("round %d: %d/%d VPs completed, %d retries, %d recovered, %d quarantined (%d partial, %d empty rows)",
		h.Round, h.Completed, h.VPs, h.Retries, h.Recovered, len(h.Quarantined), h.PartialRows, h.EmptyRows)
}

// CampaignHealth aggregates RunHealth across the rounds of one campaign
// (one snapshot build). The zero value is a healthy, empty campaign.
type CampaignHealth struct {
	Rounds    int `json:"rounds"`
	VPRuns    int `json:"vp_runs"`
	Completed int `json:"completed"`
	Retries   int `json:"retries"`
	Recovered int `json:"recovered"`
	// Quarantined is the sorted, deduplicated union of quarantined VP
	// names across rounds.
	Quarantined []string `json:"quarantined_vps,omitempty"`
	PartialRows int      `json:"partial_rows"`
	EmptyRows   int      `json:"empty_rows"`
}

// Add folds one round's health into the campaign summary.
func (c *CampaignHealth) Add(h RunHealth) {
	c.Rounds++
	c.VPRuns += h.VPs
	c.Completed += h.Completed
	c.Retries += h.Retries
	c.Recovered += h.Recovered
	c.PartialRows += h.PartialRows
	c.EmptyRows += h.EmptyRows
	if len(h.Quarantined) > 0 {
		seen := make(map[string]bool, len(c.Quarantined)+len(h.Quarantined))
		for _, vp := range c.Quarantined {
			seen[vp] = true
		}
		for _, vp := range h.Quarantined {
			if !seen[vp] {
				seen[vp] = true
				c.Quarantined = append(c.Quarantined, vp)
			}
		}
		sort.Strings(c.Quarantined)
	}
}

// Degraded reports whether any round quarantined a vantage point.
func (c CampaignHealth) Degraded() bool { return len(c.Quarantined) > 0 }

func (c CampaignHealth) String() string {
	return fmt.Sprintf("%d rounds: %d/%d VP runs completed, %d retries, %d recovered, %d quarantined VPs (%d partial, %d empty rows)",
		c.Rounds, c.Completed, c.VPRuns, c.Retries, c.Recovered, len(c.Quarantined), c.PartialRows, c.EmptyRows)
}
