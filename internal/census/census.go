// Package census orchestrates Internet-wide anycast censuses: it fans a
// probing run out over the vantage points of a platform (each running the
// Fastping engine of package prober), collects the per-VP latency matrices,
// combines multiple censuses by minimum RTT, and runs the core
// detection/enumeration/geolocation analysis over every target.
//
// This is the distributed system of Sec. 3 of the paper, with goroutines
// standing in for PlanetLab nodes: the workflow (Fig. 1) is
// blacklist -> N censuses -> combination -> analysis.
package census

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
)

// noSample marks the absence of an echo sample in the latency matrices.
const noSample = int32(-1)

// Config tunes census execution.
type Config struct {
	// Rate is the per-VP probing rate (probes per second); the prober
	// default of 1,000 applies when zero.
	Rate float64
	// Seed drives the per-VP target permutations.
	Seed uint64
	// Workers bounds the number of vantage points probing concurrently;
	// zero means GOMAXPROCS.
	Workers int
	// MaxAttempts is the per-VP probing attempt budget within one
	// census (first try included). A VP whose attempts are exhausted is
	// quarantined: its row keeps the samples the attempts gathered and
	// is reported in RunHealth instead of failing silently. Zero means
	// 3; 1 disables retrying.
	MaxAttempts int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it, capped at RetryBackoffCap. Zero means
	// 50ms; negative disables the backoff entirely (tests).
	RetryBackoff time.Duration
	// RetryBackoffCap caps the exponential backoff; zero means 2s.
	RetryBackoffCap time.Duration
}

// EffectiveWorkers resolves the configured worker count: Workers when
// positive, GOMAXPROCS otherwise.
func (c Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff != 0 {
		return c.RetryBackoff
	}
	return 50 * time.Millisecond
}

func (c Config) retryBackoffCap() time.Duration {
	if c.RetryBackoffCap > 0 {
		return c.RetryBackoffCap
	}
	return 2 * time.Second
}

// backoffFor returns the capped exponential delay preceding the given
// retry attempt (attempt >= 1).
func (c Config) backoffFor(attempt int) time.Duration {
	base := c.retryBackoff()
	if base < 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.retryBackoffCap() {
			return c.retryBackoffCap()
		}
	}
	if d > c.retryBackoffCap() {
		return c.retryBackoffCap()
	}
	return d
}

// Attempts resolves the per-VP probing attempt budget: MaxAttempts when
// positive, the default of 3 otherwise. Exported so the cluster
// coordinator re-leases failed shards under exactly the budget the
// in-process retry loop uses.
func (c Config) Attempts() int { return c.maxAttempts() }

// Backoff returns the capped exponential delay preceding retry attempt
// attempt (>= 1) — the same schedule ExecuteContext sleeps between a
// vantage point's attempts, exported so the cluster coordinator can
// delay re-leases identically.
func (c Config) Backoff(attempt int) time.Duration { return c.backoffFor(attempt) }

// sleepBackoff waits out the pre-retry backoff; it returns false when the
// context is cancelled first.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Run is the outcome of one census: a (vantage point x target) matrix of
// minimum observed RTTs plus the bookkeeping around it.
type Run struct {
	Round   uint64
	VPs     []platform.VP
	Targets []netsim.IP
	// RTTus[v][t] is the echo RTT in µs seen by VPs[v] toward
	// Targets[t], or noSample.
	RTTus    [][]int32
	Stats    []prober.Stats
	Greylist *prober.Greylist

	// Health is the round's recovery summary: retries, recovered and
	// quarantined vantage points, partial/empty rows.
	Health RunHealth

	// echoTargets memoizes EchoTargets: the full V×T scan is too
	// expensive for the per-round logging path of cmd/census.
	echoOnce    sync.Once
	echoTargets int
}

// EchoTargets returns how many targets returned an echo reply to at least
// one vantage point. The count is computed once and memoized; the latency
// matrix is immutable after ExecuteContext returns.
func (r *Run) EchoTargets() int {
	r.echoOnce.Do(func() {
		for t := range r.Targets {
			for v := range r.VPs {
				if r.RTTus[v][t] >= 0 {
					r.echoTargets++
					break
				}
			}
		}
	})
	return r.echoTargets
}

// TotalProbes returns the number of probes sent across all VPs.
func (r *Run) TotalProbes() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Sent
	}
	return n
}

// CompletionTimes returns the simulated per-VP completion durations
// (Fig. 8).
func (r *Run) CompletionTimes() []time.Duration {
	out := make([]time.Duration, len(r.Stats))
	for i, s := range r.Stats {
		out[i] = s.Completion
	}
	return out
}

// Execute runs one census: every vantage point probes every hitlist target
// at the configured rate, concurrently across VPs.
func Execute(w *netsim.World, vps []platform.VP, h *hitlist.Hitlist, blacklist *prober.Greylist, round uint64, cfg Config) *Run {
	run, _ := ExecuteContext(context.Background(), w, vps, h, blacklist, round, cfg)
	return run
}

// ExecuteContext is Execute with cancellation: when ctx is cancelled,
// in-flight vantage points finish and the rest are skipped; the partial run
// is returned together with the context's error.
//
// Per-VP probing failures do not stop the other vantage points. A failed
// VP is retried up to Config.MaxAttempts times with capped exponential
// backoff; samples accumulate across attempts (the RTT draws of a round
// are attempt-invariant, so attempts agree wherever they overlap). A VP
// whose budget is exhausted is quarantined: its partial row is kept and
// marked in Run.Health, and its final error is joined into the returned
// error.
func ExecuteContext(ctx context.Context, w *netsim.World, vps []platform.VP, h *hitlist.Hitlist, blacklist *prober.Greylist, round uint64, cfg Config) (*Run, error) {
	targets := h.Targets()
	targetIdx := make(map[netsim.IP]int, len(targets))
	for i, ip := range targets {
		targetIdx[ip] = i
	}

	run := &Run{
		Round:    round,
		VPs:      vps,
		Targets:  targets,
		RTTus:    make([][]int32, len(vps)),
		Stats:    make([]prober.Stats, len(vps)),
		Greylist: prober.NewGreylist(),
	}

	sem := make(chan struct{}, cfg.EffectiveWorkers())
	var wg sync.WaitGroup
	var greyMu sync.Mutex
	vpErrs := make([]error, len(vps))
	perVP := make([]VPHealth, len(vps))
	rowSamples := make([]int, len(vps))
	for vi := range vps {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				// Leave the row empty: this VP never ran.
				run.RTTus[vi] = emptyRow(len(targets))
				run.Stats[vi] = prober.Stats{VP: vps[vi]}
				perVP[vi] = VPHealth{VP: vps[vi].Name, Skipped: true}
				return
			}

			row := emptyRow(len(targets))
			samples := 0
			sink := func(s record.Sample) {
				if s.Kind != netsim.ReplyEcho {
					return
				}
				if ti, ok := targetIdx[s.Target]; ok {
					us := s.RTT.Microseconds()
					if us > 1<<30 {
						us = 1 << 30
					}
					if row[ti] == noSample {
						samples++
					}
					row[ti] = int32(us)
				}
			}

			vh := VPHealth{VP: vps[vi].Name}
			var stats prober.Stats
			var err error
			for attempt := 0; attempt < cfg.maxAttempts(); attempt++ {
				if attempt > 0 && !sleepBackoff(ctx, cfg.backoffFor(attempt)) {
					break
				}
				vh.Attempts++
				var grey *prober.Greylist
				stats, grey, err = prober.Run(w, vps[vi], targets, blacklist,
					prober.Config{Rate: cfg.Rate, Round: round, Seed: cfg.Seed, Attempt: attempt},
					sink)
				greyMu.Lock()
				run.Greylist.Merge(grey)
				greyMu.Unlock()
				if err == nil {
					vh.Recovered = attempt > 0
					break
				}
				if ctx.Err() != nil {
					break
				}
			}
			if err != nil {
				vh.Err = err.Error()
				if ctx.Err() == nil {
					// Retry budget exhausted on a live campaign: the
					// VP is quarantined, its partial row kept.
					vh.Quarantined = true
					vpErrs[vi] = fmt.Errorf("census: VP %s quarantined after %d attempts: %w",
						vps[vi].Name, vh.Attempts, err)
				} else {
					vpErrs[vi] = fmt.Errorf("census: VP %s: %w", vps[vi].Name, err)
				}
			}
			run.RTTus[vi] = row
			run.Stats[vi] = stats
			perVP[vi] = vh
			rowSamples[vi] = samples
		}(vi)
	}
	wg.Wait()
	// VPs never started because of cancellation still need empty rows.
	for vi := range vps {
		if run.RTTus[vi] == nil {
			run.RTTus[vi] = emptyRow(len(targets))
			run.Stats[vi] = prober.Stats{VP: vps[vi]}
			perVP[vi] = VPHealth{VP: vps[vi].Name, Skipped: true}
		}
	}
	run.Health = buildHealth(round, perVP, rowSamples)
	// Prime the memoized echo count while the run is still hot in cache;
	// cmd/census logs it after every round.
	run.EchoTargets()
	return run, errors.Join(append(vpErrs, ctx.Err())...)
}

// buildHealth folds the per-VP records into the round summary.
func buildHealth(round uint64, perVP []VPHealth, rowSamples []int) RunHealth {
	h := RunHealth{Round: round, VPs: len(perVP), PerVP: perVP}
	for vi, vh := range perVP {
		if vh.Attempts > 1 {
			h.Retries += vh.Attempts - 1
		}
		switch {
		case vh.Recovered:
			h.Recovered++
			h.Completed++
		case vh.Quarantined:
			h.Quarantined = append(h.Quarantined, vh.VP)
			if rowSamples[vi] > 0 {
				h.PartialRows++
			}
		case vh.Err == "" && !vh.Skipped:
			h.Completed++
		}
		if rowSamples[vi] == 0 {
			h.EmptyRows++
		}
	}
	return h
}

// emptyRow returns an all-noSample row.
func emptyRow(n int) []int32 {
	row := make([]int32, n)
	fillNoSample(row)
	return row
}

// Combined merges several censuses: the vantage-point union (keyed by VP
// identity) with, per (VP, target), the minimum RTT over all censuses the
// VP took part in. Minimum-combining filters queueing noise and approaches
// the propagation delay, which both sharpens geolocation and increases
// detection recall (Sec. 4.1: the combination finds ~200 more anycast /24s
// than an average individual census).
type Combined struct {
	VPs     []platform.VP
	Targets []netsim.IP
	RTTus   [][]int32
	Rounds  int

	// echoTargets memoizes EchoTargets like Run.echoTargets does: the
	// funnel and census-figure paths call it repeatedly and the full V×T
	// scan is too expensive to repeat.
	echoOnce    sync.Once
	echoTargets int
}

// Combine merges census runs. All runs must share the same target list.
func Combine(runs ...*Run) (*Combined, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("census: nothing to combine")
	}
	targets := runs[0].Targets
	for ri, r := range runs[1:] {
		if len(r.Targets) != len(targets) {
			return nil, fmt.Errorf("census: runs have different target lists (%d vs %d)", len(r.Targets), len(targets))
		}
		// Equal lengths are not enough: two censuses over different
		// hitlists of the same size would min-combine RTTs of unrelated
		// targets into garbage. Compare contents and point at the first
		// disagreement.
		for ti, tgt := range r.Targets {
			if tgt != targets[ti] {
				return nil, fmt.Errorf("census: run %d target list diverges at index %d (%v vs %v)",
					ri+1, ti, tgt, targets[ti])
			}
		}
	}

	// Group each VP's rows across runs (first-seen order), then min-merge
	// the rows of different VPs in parallel: the merges are independent,
	// and the grouping fixes both the VP order and the per-VP run order,
	// so the result is identical at any worker count.
	type rowRef struct{ run, vi int }
	byID := make(map[int]int, len(runs[0].VPs)) // vp.ID -> slot
	var vps []platform.VP
	var sources [][]rowRef
	for ri, r := range runs {
		for vi, vp := range r.VPs {
			si, ok := byID[vp.ID]
			if !ok {
				si = len(vps)
				byID[vp.ID] = si
				vps = append(vps, vp)
				sources = append(sources, nil)
			}
			sources[si] = append(sources[si], rowRef{run: ri, vi: vi})
		}
	}

	c := &Combined{Targets: targets, Rounds: len(runs), VPs: vps, RTTus: make([][]int32, len(vps))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(vps) {
		workers = len(vps)
	}
	var wg sync.WaitGroup
	chunk := (len(vps) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(vps) {
			hi = len(vps)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for si := lo; si < hi; si++ {
				refs := sources[si]
				row := make([]int32, len(targets))
				copy(row, runs[refs[0].run].RTTus[refs[0].vi])
				for _, ref := range refs[1:] {
					src := runs[ref.run].RTTus[ref.vi]
					for t, v := range src {
						if v < 0 {
							continue
						}
						if row[t] < 0 || v < row[t] {
							row[t] = v
						}
					}
				}
				c.RTTus[si] = row
			}
		}(lo, hi)
	}
	wg.Wait()
	return c, nil
}

// Measurements assembles the core.Measurement slice for one target index.
func (c *Combined) Measurements(t int) []core.Measurement {
	ms, _ := c.AppendMeasurements(t, nil, nil)
	return ms
}

// AppendMeasurements appends target t's measurements to ms and the index
// of each sample's vantage point (into c.VPs) to vpIdx, returning both.
// Passing ms[:0]/vpIdx[:0] lets the analysis loop reuse its buffers
// instead of allocating per target.
func (c *Combined) AppendMeasurements(t int, ms []core.Measurement, vpIdx []int) ([]core.Measurement, []int) {
	for v := range c.VPs {
		us := c.RTTus[v][t]
		if us < 0 {
			continue
		}
		ms = append(ms, core.Measurement{
			VP:    c.VPs[v].Name,
			VPLoc: c.VPs[v].Loc,
			RTT:   time.Duration(us) * time.Microsecond,
		})
		vpIdx = append(vpIdx, v)
	}
	return ms, vpIdx
}

// EchoTargets returns how many targets have at least one sample. The
// count is computed once and memoized; call it only once the matrix is
// final (after the last Combine or Campaign.FoldRun).
func (c *Combined) EchoTargets() int {
	c.echoOnce.Do(func() {
		for t := range c.Targets {
			for v := range c.VPs {
				if c.RTTus[v][t] >= 0 {
					c.echoTargets++
					break
				}
			}
		}
	})
	return c.echoTargets
}

// Outcome is the analysis result for one anycast target.
type Outcome struct {
	Target netsim.IP
	Result core.Result
}

// Prefix returns the /24 of the target.
func (o Outcome) Prefix() netsim.Prefix24 { return o.Target.Prefix() }

// AnalyzeAll runs detection over every target with at least minSamples
// echo samples and the full enumeration/geolocation pipeline over the
// detected ones. It returns only the anycast outcomes, sorted by target.
// Analysis is parallelized over targets; workers <= 0 means GOMAXPROCS.
//
// Scheduling is work-stealing, not static chunks: certified-unicast
// rejects cost O(VPs) while anycast targets pay the full enumeration, so
// evenly sized chunks leave most workers idle behind the one that drew
// the anycast-dense range. The shared engine in analyzer.go pulls small
// batches off an atomic cursor instead; the outcome does not depend on
// the worker count.
func AnalyzeAll(db *cities.DB, c *Combined, opt core.Options, minSamples, workers int) []Outcome {
	a := NewAnalyzer(db, AnalyzerConfig{Options: opt, MinSamples: minSamples, Workers: workers})
	a.bind(c)
	a.run(nil, true, false)
	return a.Outcomes()
}
