package census

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
)

// campaignDigest runs a small two-round campaign and serializes everything
// the pipeline observes: the record-encoded per-VP latency rows, the
// sorted greylist, and the analysis outcomes. Byte-equal digests mean the
// pipelines are indistinguishable.
func campaignDigest(t *testing.T, disableCache bool, workers int) []byte {
	t.Helper()
	wcfg := netsim.DefaultConfig()
	wcfg.Unicast24s = 500
	wcfg.DisableProbeCache = disableCache
	w := netsim.New(wcfg)

	pl := platform.PlanetLab(cities.Default())
	vps := pl.VPs()[:24]
	h := hitlist.FromWorld(w).PruneNeverAlive()
	cfg := Config{Seed: 11, Workers: workers, RetryBackoff: -1}

	blacklist, err := prober.BuildBlacklist(w, vps[0], h.Targets(), prober.Config{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	bw := record.NewBinaryWriter(&buf)
	runs := make([]*Run, 0, 2)
	for round := uint64(1); round <= 2; round++ {
		run := Execute(w, vps, h, blacklist, round, cfg)
		runs = append(runs, run)
		// The record encoding of the matrix: row-major, fixed order. (The
		// gob side of SaveRun serializes maps and is not byte-stable.)
		for v := range run.VPs {
			for ti, target := range run.Targets {
				us := run.RTTus[v][ti]
				if us < 0 {
					continue
				}
				if err := bw.Write(record.Sample{
					Target: target,
					Kind:   netsim.ReplyEcho,
					RTT:    time.Duration(us) * time.Microsecond,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Greylist: sorted snapshot.
		snap := run.Greylist.Snapshot()
		ips := make([]netsim.IP, 0, len(snap))
		for ip := range snap {
			ips = append(ips, ip)
		}
		sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
		for _, ip := range ips {
			fmt.Fprintf(&buf, "grey %v %d\n", ip, snap[ip])
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	combined, err := Combine(runs...)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := AnalyzeAll(cities.Default(), combined, core.Options{}, 2, workers)
	for _, o := range outcomes {
		fmt.Fprintf(&buf, "out %v n=%d cities=%v iter=%d\n",
			o.Target, o.Result.Count(), o.Result.Cities(), o.Result.Iterations)
	}
	return buf.Bytes()
}

// TestCensusDeterminism is the PR's regression gate: a census campaign's
// record-encoded rows, greylists and analysis outcomes are byte-identical
// across worker counts and with the probe caches on or off.
func TestCensusDeterminism(t *testing.T) {
	ref := campaignDigest(t, false, 1)
	for _, tc := range []struct {
		name         string
		disableCache bool
		workers      int
	}{
		{"cache_workers4", false, 4},
		{"nocache_workers1", true, 1},
		{"nocache_workers4", true, 4},
	} {
		got := campaignDigest(t, tc.disableCache, tc.workers)
		if !bytes.Equal(ref, got) {
			t.Fatalf("%s: digest differs from cache_workers1 reference (%d vs %d bytes)", tc.name, len(got), len(ref))
		}
	}
}
