package census

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// digestConfig selects one pipeline variant for campaignDigest: the
// execution knobs (probe cache, census workers), the combine path (batch
// Combine versus a streaming Campaign at a given fold worker count and
// shard width) and the analysis path (batch AnalyzeAll from scratch each
// round versus the incremental dirty-set analyzer).
type digestConfig struct {
	disableCache bool
	workers      int
	stream       bool
	foldWorkers  int
	shardTargets int
	incremental  bool
	// heapRows switches the streaming fold off the flat slab arena and
	// back to per-row heap allocation; digests must not notice.
	heapRows bool
	// pipelined executes each round in (VP, target-span) units through
	// ExecuteRoundPipelined instead of materializing the whole round.
	pipelined   bool
	spanTargets int
}

// campaignDigest runs a small three-round campaign and serializes
// everything the pipeline observes: the saved run bytes (SaveRun's v2
// format is byte-deterministic, so the files themselves are part of the
// digest), the analysis outcomes after every round (targets, replica
// sets, cities — pinning incremental == batch per round, not just at the
// end), the combined minimum-RTT matrix, and the campaign greylist
// union. Byte-equal digests mean the pipelines are indistinguishable.
func campaignDigest(t *testing.T, dc digestConfig) []byte {
	t.Helper()
	wcfg := netsim.DefaultConfig()
	wcfg.Unicast24s = 500
	wcfg.DisableProbeCache = dc.disableCache
	w := netsim.New(wcfg)

	pl := platform.PlanetLab(cities.Default())
	vps := pl.VPs()[:24]
	h := hitlist.FromWorld(w).PruneNeverAlive()
	cfg := Config{Seed: 11, Workers: dc.workers, RetryBackoff: -1}

	blacklist, err := prober.BuildBlacklist(w, vps[0], h.Targets(), prober.Config{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	digestOutcomes := func(round uint64, outcomes []Outcome) {
		for _, o := range outcomes {
			fmt.Fprintf(&buf, "round %d out %v n=%d cities=%v iter=%d\n",
				round, o.Target, o.Result.Count(), o.Result.Cities(), o.Result.Iterations)
			for _, rep := range o.Result.Replicas {
				fmt.Fprintf(&buf, "  rep %s located=%v disk=%v city=%s\n",
					rep.VP, rep.Located, rep.Disk, rep.City.Key())
			}
		}
	}

	cp := NewCampaign(CampaignConfig{
		Census:       cfg,
		FoldWorkers:  dc.foldWorkers,
		ShardTargets: dc.shardTargets,
		HeapRows:     dc.heapRows,
	})
	if dc.incremental {
		cp.AttachAnalyzer(NewAnalyzer(cities.Default(), AnalyzerConfig{Workers: dc.workers}))
	}
	var runs []*Run
	for round := uint64(1); round <= 3; round++ {
		// The whole-round run is always executed: its saved bytes and
		// round summary are part of the digest, so a pipelined variant is
		// pinned against the exact per-round numbers of the whole-round
		// path, not just the final matrix.
		run := Execute(w, vps, h, blacklist, round, cfg)
		if err := SaveRun(&buf, run); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "roundsum %d probes=%d echo=%d grey=%d\n",
			round, run.TotalProbes(), run.EchoTargets(), run.Greylist.Len())
		switch {
		case dc.pipelined:
			sum, err := cp.ExecuteRoundPipelined(context.Background(), w, vps, h, blacklist, round,
				PipelineConfig{SpanTargets: dc.spanTargets})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Probes != run.TotalProbes() || sum.EchoTargets != run.EchoTargets() || sum.GreylistLen != run.Greylist.Len() {
				t.Fatalf("round %d pipelined summary (probes=%d echo=%d grey=%d) != whole-round (probes=%d echo=%d grey=%d)",
					round, sum.Probes, sum.EchoTargets, sum.GreylistLen,
					run.TotalProbes(), run.EchoTargets(), run.Greylist.Len())
			}
		case dc.stream:
			if err := cp.FoldRun(run); err != nil {
				t.Fatal(err)
			}
		default:
			runs = append(runs, run)
		}
		// Per-round analysis outcomes, through whichever path the
		// variant selects.
		switch {
		case dc.incremental:
			cp.AnalyzeDirty()
			digestOutcomes(round, cp.Outcomes())
		case dc.stream || dc.pipelined:
			digestOutcomes(round, AnalyzeAll(cities.Default(), cp.Combined(), core.Options{}, 2, dc.workers))
		default:
			c, err := Combine(runs...)
			if err != nil {
				t.Fatal(err)
			}
			digestOutcomes(round, AnalyzeAll(cities.Default(), c, core.Options{}, 2, dc.workers))
		}
	}

	var combined *Combined
	grey := prober.NewGreylist()
	if dc.stream || dc.pipelined {
		combined = cp.Combined()
		grey.Merge(cp.Greylist())
	} else {
		combined, err = Combine(runs...)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range runs {
			grey.Merge(run.Greylist)
		}
	}

	// Combined matrix: raw little-endian cells, row-major in VP order.
	fmt.Fprintf(&buf, "combined %d vps %d targets %d rounds\n",
		len(combined.VPs), len(combined.Targets), combined.Rounds)
	for v, vp := range combined.VPs {
		fmt.Fprintf(&buf, "vp %d %s\n", vp.ID, vp.Name)
		if err := binary.Write(&buf, binary.LittleEndian, combined.RTTus[v]); err != nil {
			t.Fatal(err)
		}
	}

	// Campaign greylist union: sorted snapshot.
	snap := grey.Snapshot()
	ips := make([]netsim.IP, 0, len(snap))
	for ip := range snap {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
	for _, ip := range ips {
		fmt.Fprintf(&buf, "grey %v %d\n", ip, snap[ip])
	}

	outcomes := AnalyzeAll(cities.Default(), combined, core.Options{}, 2, dc.workers)
	for _, o := range outcomes {
		fmt.Fprintf(&buf, "out %v n=%d cities=%v iter=%d\n",
			o.Target, o.Result.Count(), o.Result.Cities(), o.Result.Iterations)
	}
	return buf.Bytes()
}

// TestCensusDeterminism is the PR's regression gate: a census campaign's
// saved run bytes, per-round analysis outcomes, combined matrix and
// greylist union are byte-identical across worker counts, with the probe
// caches on or off, whether the rounds are batch-Combined or folded
// through a Campaign at any fold worker count and shard width, and —
// the incremental engine's contract — whether each round's outcomes come
// from a from-scratch AnalyzeAll or the dirty-set analyzer revalidating
// cached certificates.
func TestCensusDeterminism(t *testing.T) {
	ref := campaignDigest(t, digestConfig{workers: 1})
	for _, tc := range []struct {
		name string
		dc   digestConfig
	}{
		{"batch_cache_workers4", digestConfig{workers: 4}},
		{"batch_nocache_workers1", digestConfig{disableCache: true, workers: 1}},
		{"batch_nocache_workers4", digestConfig{disableCache: true, workers: 4}},
		{"stream_fold1_shard1", digestConfig{workers: 1, stream: true, foldWorkers: 1, shardTargets: 1}},
		{"stream_fold4_shard64", digestConfig{workers: 4, stream: true, foldWorkers: 4, shardTargets: 64}},
		{"stream_fold3_shardhuge", digestConfig{workers: 2, stream: true, foldWorkers: 3, shardTargets: 1 << 20}},
		{"stream_nocache_workers4", digestConfig{disableCache: true, workers: 4, stream: true}},
		{"incremental_workers1", digestConfig{workers: 1, stream: true, incremental: true}},
		{"incremental_workers4", digestConfig{workers: 4, stream: true, foldWorkers: 4, shardTargets: 64, incremental: true}},
		{"incremental_workers3_shard1", digestConfig{workers: 3, stream: true, foldWorkers: 2, shardTargets: 1, incremental: true}},
		{"incremental_nocache_workers4", digestConfig{disableCache: true, workers: 4, stream: true, incremental: true}},
		{"stream_heaprows", digestConfig{workers: 4, stream: true, foldWorkers: 4, shardTargets: 64, heapRows: true}},
		{"pipelined_default", digestConfig{workers: 4, pipelined: true}},
		{"pipelined_span17", digestConfig{workers: 3, pipelined: true, spanTargets: 17}},
		{"pipelined_heaprows", digestConfig{workers: 2, pipelined: true, spanTargets: 128, heapRows: true}},
		{"pipelined_incremental", digestConfig{workers: 4, pipelined: true, spanTargets: 64, incremental: true}},
		// Span-session bit-identity: the span-resident probe path (cache
		// on) against the uncached reference (cache off, where the span
		// resolver delegates every probe), across span widths from a
		// single target to one span per round and both worker counts.
		{"pipelined_span1_workers1", digestConfig{workers: 1, pipelined: true, spanTargets: 1}},
		{"pipelined_nocache_span17", digestConfig{disableCache: true, workers: 4, pipelined: true, spanTargets: 17}},
		{"pipelined_nocache_workers1_spanhuge", digestConfig{disableCache: true, workers: 1, pipelined: true, spanTargets: 1 << 20}},
	} {
		got := campaignDigest(t, tc.dc)
		if !bytes.Equal(ref, got) {
			t.Fatalf("%s: digest differs from batch workers=1 reference (%d vs %d bytes)", tc.name, len(got), len(ref))
		}
	}
}
