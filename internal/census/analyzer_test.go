package census

import (
	"context"
	"reflect"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// handRun builds a one-round Run over real vantage-point locations with a
// hand-written RTT matrix (microseconds; -1 = no sample), so tests control
// exactly which combined cells improve between rounds.
func handRun(round uint64, vps []platform.VP, nTargets int, rtt func(v, t int) int32) *Run {
	targets := make([]netsim.IP, nTargets)
	for t := range targets {
		targets[t] = netsim.IP(10<<24 + t<<8 + 1)
	}
	rttus := make([][]int32, len(vps))
	for v := range vps {
		row := make([]int32, nTargets)
		for t := range row {
			row[t] = rtt(v, t)
		}
		rttus[v] = row
	}
	return &Run{Round: round, VPs: vps, Targets: targets, RTTus: rttus, Greylist: prober.NewGreylist()}
}

// assertIncrementalMatchesBatch deep-compares the analyzer's outcomes with
// a from-scratch AnalyzeAll over the same combined matrix.
func assertIncrementalMatchesBatch(t *testing.T, cp *Campaign, workers int) {
	t.Helper()
	got := cp.Outcomes()
	want := AnalyzeAll(cities.Default(), cp.Combined(), core.Options{}, 2, workers)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental outcomes diverge from batch:\n got %d outcomes %+v\nwant %d outcomes %+v",
			len(got), got, len(want), want)
	}
}

// TestAnalyzerDirtyCleanDirty walks one target through dirty → clean →
// dirty across three rounds: round 2 re-reports every sample at a worse
// RTT (no combined cell improves, so nothing about it is dirty), round 3
// improves one cell. The clean round must skip the target entirely and
// every round must still match batch analysis bit for bit.
func TestAnalyzerDirtyCleanDirty(t *testing.T) {
	vps := platform.PlanetLab(cities.Default()).VPs()[:8]
	const nT = 10
	const hot = 4 // the target whose lifecycle the test tracks

	// Round 1: every VP answers every target at 40 ms except the hot
	// target, which two far-apart VPs see at ~1 ms — a clean anycast
	// proof.
	base := func(v, t int) int32 {
		if t == hot && (v == 0 || v == len(vps)-1) {
			return 1_000
		}
		return 40_000
	}
	cp := NewCampaign(CampaignConfig{})
	an := NewAnalyzer(cities.Default(), AnalyzerConfig{Workers: 2})
	cp.AttachAnalyzer(an)

	if err := cp.FoldRun(handRun(1, vps, nT, base)); err != nil {
		t.Fatal(err)
	}
	dirty := cp.TakeDirty()
	if len(dirty) != nT {
		t.Fatalf("first fold dirtied %d targets, want all %d", len(dirty), nT)
	}
	an.Update(cp.Combined(), dirty)
	assertIncrementalMatchesBatch(t, cp, 2)
	if got := an.Stats().Analyzed; got != nT {
		t.Fatalf("round 1 analyzed %d targets, want %d", got, nT)
	}

	// Round 2: everything answers 5 µs slower — min-combine improves no
	// cell, so no target is dirty, least of all the hot one.
	if err := cp.FoldRun(handRun(2, vps, nT, func(v, t int) int32 { return base(v, t) + 5 })); err != nil {
		t.Fatal(err)
	}
	dirty = cp.TakeDirty()
	if len(dirty) != 0 {
		t.Fatalf("worse-only round dirtied %v, want none", dirty)
	}
	an.Update(cp.Combined(), dirty)
	assertIncrementalMatchesBatch(t, cp, 2)
	if got := an.Stats().Analyzed; got != nT {
		t.Fatalf("clean round re-analyzed targets: total %d, want still %d", got, nT)
	}

	// Round 3: one VP sees the hot target faster — it (and only it) goes
	// dirty again, and its cached anycast certificate should revalidate
	// without a fresh scan.
	hitsBefore := an.Stats().CertHits
	if err := cp.FoldRun(handRun(3, vps, nT, func(v, t int) int32 {
		if t == hot && v == 0 {
			return 500
		}
		return base(v, t) + 5
	})); err != nil {
		t.Fatal(err)
	}
	dirty = cp.TakeDirty()
	if len(dirty) != 1 || dirty[0] != hot {
		t.Fatalf("round 3 dirty set %v, want [%d]", dirty, hot)
	}
	an.Update(cp.Combined(), dirty)
	assertIncrementalMatchesBatch(t, cp, 2)
	if got := an.Stats().Analyzed; got != nT+1 {
		t.Fatalf("round 3 analyzed total %d, want %d", got, nT+1)
	}
	if an.Stats().CertHits != hitsBefore+1 {
		t.Fatalf("shrunk anycast pair did not revalidate: hits %d → %d", hitsBefore, an.Stats().CertHits)
	}
}

// TestAnalyzerNewVPAppends folds a round with two additional vantage
// points: the fresh rows dirty every target they answered and the
// analyzer's VP distance matrix grows, still matching batch.
func TestAnalyzerNewVPAppends(t *testing.T) {
	vps := platform.PlanetLab(cities.Default()).VPs()[:8]
	const nT = 12
	rtt1 := func(v, t int) int32 {
		if t%3 == 0 && (v == 0 || v == 5) {
			return 900
		}
		return 30_000 + int32(t)*11
	}
	cp := NewCampaign(CampaignConfig{})
	an := NewAnalyzer(cities.Default(), AnalyzerConfig{Workers: 3})
	cp.AttachAnalyzer(an)
	if err := cp.FoldRun(handRun(1, vps[:6], nT, rtt1)); err != nil {
		t.Fatal(err)
	}
	if n := cp.AnalyzeDirty(); n != nT {
		t.Fatalf("first fold analyzed %d, want %d", n, nT)
	}
	assertIncrementalMatchesBatch(t, cp, 3)

	// Round 2 probes from all 8 VPs; the two new rows answer only the
	// even targets.
	if err := cp.FoldRun(handRun(2, vps, nT, func(v, t int) int32 {
		if v >= 6 {
			if t%2 == 0 {
				return 1_200
			}
			return noSample
		}
		return rtt1(v, t) + 7
	})); err != nil {
		t.Fatal(err)
	}
	n := cp.AnalyzeDirty()
	if want := nT / 2; n != want {
		t.Fatalf("new-VP round analyzed %d, want the %d even targets", n, want)
	}
	assertIncrementalMatchesBatch(t, cp, 3)
}

// TestAnalyzerSingleWorkerStaticPath pins the workers==1 fallback: one
// effective worker takes the static-chunk path (no work-stealing cursor),
// and its outcomes and engine counters are indistinguishable from the
// multi-worker pool's — across dirty-set sizes from a single target up to
// the full list, the shapes where a chunking bug would double-analyze or
// skip work.
func TestAnalyzerSingleWorkerStaticPath(t *testing.T) {
	vps := platform.PlanetLab(cities.Default()).VPs()[:10]
	const nT = 257 // a prime, so no chunk width divides it evenly
	rtt := func(v, t int) int32 {
		if t%5 == 0 && (v == t%3 || v == 9-t%4) {
			return 800 + int32(t)
		}
		return 25_000 + int32(v*131+t)*7
	}

	run := func(workers int, dirtySizes []int) (*Analyzer, []Outcome) {
		cp := NewCampaign(CampaignConfig{})
		an := NewAnalyzer(cities.Default(), AnalyzerConfig{Workers: workers})
		cp.AttachAnalyzer(an)
		if err := cp.FoldRun(handRun(1, vps, nT, rtt)); err != nil {
			t.Fatal(err)
		}
		an.Update(cp.Combined(), cp.TakeDirty())
		// Re-analyze hand-picked dirty sets of awkward sizes through the
		// same engine; results must stay self-consistent.
		for _, sz := range dirtySizes {
			dirty := make([]int, sz)
			for i := range dirty {
				dirty[i] = (i * 37) % nT
			}
			an.Update(cp.Combined(), dirty)
		}
		return an, an.Outcomes()
	}

	sizes := []int{1, 2, nT / 2, nT}
	anSeq, seq := run(1, sizes)
	anPool, pool := run(4, sizes)
	if !reflect.DeepEqual(seq, pool) {
		t.Fatalf("workers=1 static path outcomes diverge from workers=4 pool:\n got %d outcomes\nwant %d outcomes", len(seq), len(pool))
	}
	if anSeq.Stats().Analyzed != anPool.Stats().Analyzed {
		t.Fatalf("analyzed counters diverge: workers=1 %d, workers=4 %d",
			anSeq.Stats().Analyzed, anPool.Stats().Analyzed)
	}
	if !reflect.DeepEqual(seq, AnalyzeAll(cities.Default(), func() *Combined {
		cp := NewCampaign(CampaignConfig{})
		if err := cp.FoldRun(handRun(1, vps, nT, rtt)); err != nil {
			t.Fatal(err)
		}
		return cp.Combined()
	}(), core.Options{}, 2, 1)) {
		t.Fatal("workers=1 outcomes diverge from single-worker batch AnalyzeAll")
	}
}

// TestExecuteRoundsOverlapped runs a real probing campaign through the
// overlapped probe/analyze pipeline and checks it is indistinguishable
// from the sequential fold-then-analyze path.
func TestExecuteRoundsOverlapped(t *testing.T) {
	wcfg := netsim.DefaultConfig()
	wcfg.Unicast24s = 300
	w := netsim.New(wcfg)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.VPs()[:16]
	h := hitlist.FromWorld(w).PruneNeverAlive()
	cfg := Config{Seed: 7, RetryBackoff: -1}
	blacklist, err := prober.BuildBlacklist(w, vps[0], h.Targets(), prober.Config{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}

	cp := NewCampaign(CampaignConfig{Census: cfg})
	cp.AttachAnalyzer(NewAnalyzer(cities.Default(), AnalyzerConfig{}))
	var seen []uint64
	err = cp.ExecuteRoundsOverlapped(context.Background(), w, h, blacklist, 1, 3,
		func(uint64) []platform.VP { return vps },
		func(sum RoundSummary, roundErr error) {
			if roundErr != nil {
				t.Errorf("round %d: %v", sum.Round, roundErr)
			}
			seen = append(seen, sum.Round)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("observed rounds %v, want [1 2 3]", seen)
	}
	if cp.Combined().Rounds != 3 {
		t.Fatalf("combined %d rounds, want 3", cp.Combined().Rounds)
	}
	if cp.AnalysisWall() <= 0 {
		t.Error("analysis wall time not recorded")
	}
	assertIncrementalMatchesBatch(t, cp, 0)

	// The sequential reference: same rounds, fold + analyze in lockstep.
	ref := NewCampaign(CampaignConfig{Census: cfg})
	ref.AttachAnalyzer(NewAnalyzer(cities.Default(), AnalyzerConfig{}))
	for round := uint64(1); round <= 3; round++ {
		if _, err := ref.ExecuteRound(context.Background(), w, vps, h, blacklist, round); err != nil {
			t.Fatal(err)
		}
		ref.AnalyzeDirty()
	}
	if !reflect.DeepEqual(cp.Outcomes(), ref.Outcomes()) {
		t.Fatal("overlapped and sequential campaigns disagree")
	}
}

// TestExecuteRoundsOverlappedRequiresAnalyzer pins the error path.
func TestExecuteRoundsOverlappedRequiresAnalyzer(t *testing.T) {
	cp := NewCampaign(CampaignConfig{})
	if err := cp.ExecuteRoundsOverlapped(context.Background(), nil, nil, nil, 1, 1, nil, nil); err == nil {
		t.Fatal("expected an error without an attached analyzer")
	}
}
