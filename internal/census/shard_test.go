package census

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"anycastmap/internal/netsim"
	"anycastmap/internal/prober"
)

// shardsOf slices a run into per-(VP, span) shard frames, the shape an
// agent streams back to the coordinator.
func shardsOf(run *Run, slots []int, width int) []*ShardRows {
	var out []*ShardRows
	for _, sp := range ShardSpans(len(run.Targets), width) {
		for vi := range run.VPs {
			row := make([]int32, sp.Hi-sp.Lo)
			copy(row, run.RTTus[vi][sp.Lo:sp.Hi])
			out = append(out, &ShardRows{
				Round:    run.Round,
				Lo:       sp.Lo,
				Hi:       sp.Hi,
				Slots:    []int{slots[vi]},
				RTTus:    [][]int32{row},
				Stats:    []ShardStats{ShardStatsOf(run.Stats[vi])},
				Greylist: run.Greylist,
			})
		}
	}
	return out
}

// foldByShards replays a run through the shard-wise fold path.
func foldByShards(t *testing.T, cp *Campaign, run *Run, width int, shuffleSeed int64, duplicate bool) {
	t.Helper()
	slots, err := cp.BeginRound(run.Round, run.Targets, run.VPs)
	if err != nil {
		t.Fatalf("BeginRound: %v", err)
	}
	shards := shardsOf(run, slots, width)
	if duplicate {
		// A re-lease after agent loss delivers the same shard twice.
		shards = append(shards, shards[:len(shards)/3]...)
	}
	if shuffleSeed != 0 {
		rng := rand.New(rand.NewSource(shuffleSeed))
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
	}
	for _, sr := range shards {
		// Round-trip every frame through the wire codec: the fold path
		// under test is the one the coordinator runs on decoded frames.
		enc, err := sr.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, err := DecodeShardRows(enc)
		if err != nil {
			t.Fatalf("DecodeShardRows: %v", err)
		}
		if err := cp.FoldShard(dec); err != nil {
			t.Fatalf("FoldShard: %v", err)
		}
	}
	if err := cp.FinishRound(run.Health); err != nil {
		t.Fatalf("FinishRound: %v", err)
	}
}

func sameCampaign(t *testing.T, want, got *Campaign) {
	t.Helper()
	cw, cg := want.Combined(), got.Combined()
	if !reflect.DeepEqual(cw.VPs, cg.VPs) {
		t.Fatal("VP union diverges")
	}
	if !reflect.DeepEqual(cw.Targets, cg.Targets) {
		t.Fatal("target lists diverge")
	}
	if cw.Rounds != cg.Rounds {
		t.Fatalf("rounds %d vs %d", cw.Rounds, cg.Rounds)
	}
	for v := range cw.RTTus {
		if !reflect.DeepEqual(cw.RTTus[v], cg.RTTus[v]) {
			t.Fatalf("combined row %d diverges", v)
		}
	}
	if !reflect.DeepEqual(want.Greylist().Snapshot(), got.Greylist().Snapshot()) {
		t.Fatal("greylists diverge")
	}
}

// The shard-wise fold must reproduce FoldRun byte-for-byte: same combined
// matrix, same greylist, same dirty bits — the acceptance bar for the
// distributed census.
func TestFoldShardMatchesFoldRun(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)

	ref := NewCampaign(CampaignConfig{})
	if err := ref.FoldRun(r1); err != nil {
		t.Fatal(err)
	}
	if err := ref.FoldRun(r2); err != nil {
		t.Fatal(err)
	}
	refDirty := ref.TakeDirty()

	for _, width := range []int{0, 509, 1931, len(r1.Targets) + 5} {
		cp := NewCampaign(CampaignConfig{})
		foldByShards(t, cp, r1, width, 0, false)
		foldByShards(t, cp, r2, width, 0, false)
		sameCampaign(t, ref, cp)
		if got := cp.TakeDirty(); !reflect.DeepEqual(refDirty, got) {
			t.Fatalf("width %d: dirty targets diverge (%d vs %d)", width, len(refDirty), len(got))
		}
	}
}

// Per-cell min is commutative, associative, and idempotent: shards folded
// in any order, even duplicated (a re-leased shard after agent loss),
// give the identical combined state.
func TestFoldShardOrderInvariance(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)

	ref := NewCampaign(CampaignConfig{})
	foldByShards(t, ref, r1, 512, 0, false)
	foldByShards(t, ref, r2, 512, 0, false)
	refDirty := ref.TakeDirty()

	for _, seed := range []int64{1, 42, 1337} {
		cp := NewCampaign(CampaignConfig{})
		foldByShards(t, cp, r1, 512, seed, true)
		foldByShards(t, cp, r2, 512, seed, true)
		sameCampaign(t, ref, cp)
		if got := cp.TakeDirty(); !reflect.DeepEqual(refDirty, got) {
			t.Fatalf("seed %d: dirty targets diverge", seed)
		}
	}
}

func TestFoldShardTypedErrors(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	cp := NewCampaign(CampaignConfig{})

	if err := cp.FoldShard(&ShardRows{Round: r1.Round}); err == nil || !strings.Contains(err.Error(), "no shard round open") {
		t.Fatalf("fold without round: %v", err)
	}

	slots, err := cp.BeginRound(r1.Round, r1.Targets, r1.VPs[:2])
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cp.BeginRound(r1.Round+1, r1.Targets, r1.VPs); err == nil || !strings.Contains(err.Error(), "still open") {
		t.Fatalf("nested BeginRound: %v", err)
	}
	if err := cp.FoldRun(r1); err == nil || !strings.Contains(err.Error(), "FinishRound first") {
		t.Fatalf("FoldRun during shard round: %v", err)
	}
	if err := cp.FoldShard(&ShardRows{Round: r1.Round + 9}); err == nil || !strings.Contains(err.Error(), "open round is") {
		t.Fatalf("round mismatch: %v", err)
	}

	row := func(n int) [][]int32 { return [][]int32{make([]int32, n)} }

	var slotErr *UnknownVPSlotError
	err = cp.FoldShard(&ShardRows{Round: r1.Round, Lo: 0, Hi: 4, Slots: []int{99}, RTTus: row(4)})
	if !errors.As(err, &slotErr) || slotErr.Slot != 99 {
		t.Fatalf("out-of-range slot: %v", err)
	}
	// Register only the first two VPs, then reference a slot belonging to
	// a VP outside the open round.
	cp2 := NewCampaign(CampaignConfig{})
	if err := cp2.FoldRun(r1); err != nil {
		t.Fatal(err)
	}
	s2, err := cp2.BeginRound(r1.Round+1, r1.Targets, r1.VPs[:1])
	if err != nil {
		t.Fatal(err)
	}
	err = cp2.FoldShard(&ShardRows{Round: r1.Round + 1, Lo: 0, Hi: 4, Slots: []int{s2[0] + 1}, RTTus: row(4)})
	if !errors.As(err, &slotErr) {
		t.Fatalf("slot outside round: %v", err)
	}

	var rangeErr *ShardRangeError
	err = cp.FoldShard(&ShardRows{Round: r1.Round, Lo: 0, Hi: len(r1.Targets) + 1, Slots: []int{slots[0]}, RTTus: row(len(r1.Targets) + 1)})
	if !errors.As(err, &rangeErr) || rangeErr.RowCells != -1 {
		t.Fatalf("span beyond targets: %v", err)
	}
	err = cp.FoldShard(&ShardRows{Round: r1.Round, Lo: 0, Hi: 8, Slots: []int{slots[0]}, RTTus: row(5)})
	if !errors.As(err, &rangeErr) || rangeErr.RowCells != 5 {
		t.Fatalf("row width mismatch: %v", err)
	}

	// None of the rejected frames may have touched the campaign.
	if got := cp.TakeDirty(); len(got) != 0 {
		t.Fatalf("rejected frames dirtied %d targets", len(got))
	}

	if err := cp.FinishRound(RunHealth{Round: r1.Round}); err != nil {
		t.Fatal(err)
	}
	if err := cp.FinishRound(RunHealth{}); err == nil {
		t.Fatal("double FinishRound succeeded")
	}
}

func TestShardRowsEncodeDeterministic(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	sr := &ShardRows{
		Round:    r1.Round,
		Lo:       10,
		Hi:       500,
		Slots:    []int{0, 1},
		RTTus:    [][]int32{r1.RTTus[0][10:500], r1.RTTus[1][10:500]},
		Stats:    []ShardStats{ShardStatsOf(r1.Stats[0]), ShardStatsOf(r1.Stats[1])},
		Greylist: r1.Greylist,
	}
	a, err := sr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("shard frame encoding is not deterministic")
	}
	dec, err := DecodeShardRows(a)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Round != sr.Round || dec.Lo != sr.Lo || dec.Hi != sr.Hi {
		t.Fatalf("header round-trip: %+v", dec)
	}
	if !reflect.DeepEqual(dec.Slots, sr.Slots) || !reflect.DeepEqual(dec.Stats, sr.Stats) {
		t.Fatal("slots/stats round-trip mismatch")
	}
	for i := range sr.RTTus {
		if !reflect.DeepEqual(dec.RTTus[i], sr.RTTus[i]) {
			t.Fatalf("row %d round-trip mismatch", i)
		}
	}
	if !reflect.DeepEqual(dec.Greylist.Snapshot(), sr.Greylist.Snapshot()) {
		t.Fatal("greylist round-trip mismatch")
	}
}

func TestShardRowsEncodeRejectsBadShapes(t *testing.T) {
	for _, sr := range []*ShardRows{
		{Lo: 5, Hi: 3},
		{Lo: -1, Hi: 3},
		{Lo: 0, Hi: 2, Slots: []int{0}},                                                        // missing row
		{Lo: 0, Hi: 2, Slots: []int{0}, RTTus: [][]int32{{1}}},                                 // narrow row
		{Lo: 0, Hi: 2, Slots: []int{-1}, RTTus: [][]int32{{1, 2}}},                             // negative slot
		{Lo: 0, Hi: 2, Slots: []int{0}, RTTus: [][]int32{{1, 2}}, Stats: []ShardStats{{}, {}}}, // stats mismatch
		{Lo: 0, Hi: 2, Slots: []int{0}, RTTus: [][]int32{{1, 2}}, Stats: []ShardStats{{Sent: -1}}},
	} {
		if _, err := sr.Encode(); err == nil {
			t.Errorf("Encode accepted %+v", sr)
		}
	}
}

func TestDecodeShardRowsHostile(t *testing.T) {
	good := &ShardRows{
		Round: 3, Lo: 0, Hi: 4,
		Slots: []int{0},
		RTTus: [][]int32{{100, NoSample, 250, 3}},
		Stats: []ShardStats{{Sent: 4, Echo: 3}},
		Greylist: func() *prober.Greylist {
			g := prober.NewGreylist()
			g.Add(netsim.IP(77), netsim.ReplyAdminFiltered)
			return g
		}(),
	}
	enc, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeShardRows(enc); err != nil {
		t.Fatal(err)
	}

	// Every truncation of a valid frame must fail cleanly, not panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeShardRows(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// And so must single-byte corruptions of the header region.
	for i := 0; i < len(enc) && i < 24; i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		DecodeShardRows(mut) // must not panic; error or success both fine
	}

	hostile := [][]byte{
		[]byte("ACMS9\n"),
		append([]byte(ShardFrameMagic), 0x01),                                     // bad flags
		append([]byte(ShardFrameMagic), 0, 1, 0, 0xff, 0xff, 0xff, 0xff, 0x7f, 0), // giant width, no payload
		append([]byte(ShardFrameMagic), 0, 1, 0, 4, 0, 0xff, 0xff, 0xff, 0xff, 0x0f), // giant row count
	}
	for i, b := range hostile {
		if _, err := DecodeShardRows(b); err == nil {
			t.Errorf("hostile frame %d accepted", i)
		}
	}
}

func TestShardSpans(t *testing.T) {
	for _, tc := range []struct {
		n, width, spans int
	}{
		{0, 10, 0}, {-3, 10, 0}, {10, 0, 1}, {10, 100, 1}, {10, 3, 4}, {9, 3, 3}, {1, 1, 1},
	} {
		spans := ShardSpans(tc.n, tc.width)
		if len(spans) != tc.spans {
			t.Fatalf("ShardSpans(%d, %d) = %d spans, want %d", tc.n, tc.width, len(spans), tc.spans)
		}
		next := 0
		for _, sp := range spans {
			if sp.Lo != next || sp.Hi <= sp.Lo || sp.Hi > tc.n {
				t.Fatalf("ShardSpans(%d, %d): bad span %+v", tc.n, tc.width, sp)
			}
			next = sp.Hi
		}
		if len(spans) > 0 && next != tc.n {
			t.Fatalf("ShardSpans(%d, %d) covers %d targets", tc.n, tc.width, next)
		}
	}
}
