package census

import (
	"compress/flate"
	"encoding/gob"
	"fmt"
	"io"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// runDisk is the persisted shape of a census run. The paper's workflow
// uploads each vantage point's measurements to a central repository
// (Fig. 1); SaveRun/LoadRun are that repository's storage format: gob
// encoding under DEFLATE, which squeezes the sparse latency matrix well.
type runDisk struct {
	Round    uint64
	VPs      []platform.VP
	Targets  []netsim.IP
	RTTus    [][]int32
	Stats    []prober.Stats
	Greylist map[netsim.IP]netsim.ReplyKind
	Health   RunHealth
}

// SaveRun writes the census run to w.
func SaveRun(w io.Writer, r *Run) error {
	fw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		return fmt.Errorf("census: %w", err)
	}
	disk := runDisk{
		Round:    r.Round,
		VPs:      r.VPs,
		Targets:  r.Targets,
		RTTus:    r.RTTus,
		Stats:    r.Stats,
		Greylist: r.Greylist.Snapshot(),
		Health:   r.Health,
	}
	if err := gob.NewEncoder(fw).Encode(&disk); err != nil {
		return fmt.Errorf("census: encode run: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("census: %w", err)
	}
	return nil
}

// LoadRun reads a census run saved by SaveRun and validates its shape.
func LoadRun(r io.Reader) (*Run, error) {
	fr := flate.NewReader(r)
	defer fr.Close()
	var disk runDisk
	if err := gob.NewDecoder(fr).Decode(&disk); err != nil {
		return nil, fmt.Errorf("census: decode run: %w", err)
	}
	if len(disk.RTTus) != len(disk.VPs) {
		return nil, fmt.Errorf("census: run has %d matrix rows for %d VPs", len(disk.RTTus), len(disk.VPs))
	}
	for i, row := range disk.RTTus {
		if len(row) != len(disk.Targets) {
			return nil, fmt.Errorf("census: row %d has %d cells for %d targets", i, len(row), len(disk.Targets))
		}
	}
	return &Run{
		Round:    disk.Round,
		VPs:      disk.VPs,
		Targets:  disk.Targets,
		RTTus:    disk.RTTus,
		Stats:    disk.Stats,
		Greylist: prober.FromSnapshot(disk.Greylist),
		Health:   disk.Health,
	}, nil
}
