package census

import (
	"bufio"
	"compress/flate"
	"encoding/gob"
	"fmt"
	"io"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// The paper's workflow uploads each vantage point's measurements to a
// central repository (Fig. 1); SaveRun/LoadRun are that repository's
// storage format. Generation 1 was gob under DEFLATE; generation 2
// (iov2.go) is the columnar varint format — byte-deterministic, parallel,
// and several times faster on both sides. SaveRun writes v2; LoadRun
// recognizes both by the leading magic, so archives saved by older
// builds keep loading.

// runDisk is the persisted shape of a legacy (gob+flate) census run.
type runDisk struct {
	Round    uint64
	VPs      []platform.VP
	Targets  []netsim.IP
	RTTus    [][]int32
	Stats    []prober.Stats
	Greylist map[netsim.IP]netsim.ReplyKind
	Health   RunHealth
}

// SaveRun writes the census run to w in the v2 columnar format. The
// output is byte-deterministic: saving the same run twice yields
// identical bytes.
func SaveRun(w io.Writer, r *Run) error {
	return saveRunV2(w, r)
}

// SaveRunLegacy writes the generation-1 gob+flate encoding. It exists so
// tests (and operators migrating archives) can still produce legacy
// files; its bytes are not deterministic (gob serializes the greylist
// map in random order).
func SaveRunLegacy(w io.Writer, r *Run) error {
	fw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		return fmt.Errorf("census: %w", err)
	}
	disk := runDisk{
		Round:    r.Round,
		VPs:      r.VPs,
		Targets:  r.Targets,
		RTTus:    r.RTTus,
		Stats:    r.Stats,
		Greylist: r.Greylist.Snapshot(),
		Health:   r.Health,
	}
	if err := gob.NewEncoder(fw).Encode(&disk); err != nil {
		return fmt.Errorf("census: encode run: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("census: %w", err)
	}
	return nil
}

// LoadRun reads a census run saved by SaveRun — either format, v2
// columnar or legacy gob+flate, recognized by the leading bytes — and
// validates its shape.
func LoadRun(r io.Reader) (*Run, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(runMagicV2))
	if err == nil && string(head) == runMagicV2 {
		br.Discard(len(runMagicV2))
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("census: read v2 run: %w", err)
		}
		return loadRunV2(data)
	}
	return loadRunLegacy(br)
}

// loadRunLegacy decodes the generation-1 gob+flate encoding.
func loadRunLegacy(r io.Reader) (*Run, error) {
	fr := flate.NewReader(r)
	defer fr.Close()
	var disk runDisk
	if err := gob.NewDecoder(fr).Decode(&disk); err != nil {
		return nil, fmt.Errorf("census: decode run: %w", err)
	}
	if len(disk.RTTus) != len(disk.VPs) {
		return nil, fmt.Errorf("census: run has %d matrix rows for %d VPs", len(disk.RTTus), len(disk.VPs))
	}
	for i, row := range disk.RTTus {
		if len(row) != len(disk.Targets) {
			return nil, fmt.Errorf("census: row %d has %d cells for %d targets", i, len(row), len(disk.Targets))
		}
	}
	return &Run{
		Round:    disk.Round,
		VPs:      disk.VPs,
		Targets:  disk.Targets,
		RTTus:    disk.RTTus,
		Stats:    disk.Stats,
		Greylist: prober.FromSnapshot(disk.Greylist),
		Health:   disk.Health,
	}, nil
}
