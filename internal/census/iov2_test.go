package census

import (
	"bytes"
	"strings"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
)

// roundTrip saves the run with save and loads it back.
func roundTrip(t *testing.T, r *Run, save func(w *bytes.Buffer, r *Run) error) *Run {
	t.Helper()
	var buf bytes.Buffer
	if err := save(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// checkRunEqual compares every field LoadRun reconstructs.
func checkRunEqual(t *testing.T, got, want *Run) {
	t.Helper()
	if got.Round != want.Round {
		t.Fatalf("round %d, want %d", got.Round, want.Round)
	}
	if len(got.VPs) != len(want.VPs) || len(got.Targets) != len(want.Targets) {
		t.Fatal("run shape does not round trip")
	}
	for vi := range want.VPs {
		if got.VPs[vi] != want.VPs[vi] {
			t.Fatal("VP does not round trip")
		}
		if got.Stats[vi] != want.Stats[vi] {
			t.Fatal("stats do not round trip")
		}
		if !bytes.Equal(int32Bytes(got.RTTus[vi]), int32Bytes(want.RTTus[vi])) {
			t.Fatalf("row %d does not round trip", vi)
		}
	}
	for ti := range want.Targets {
		if got.Targets[ti] != want.Targets[ti] {
			t.Fatal("target list does not round trip")
		}
	}
	wantSnap := want.Greylist.Snapshot()
	gotSnap := got.Greylist.Snapshot()
	if len(gotSnap) != len(wantSnap) {
		t.Fatalf("greylist %d entries, want %d", len(gotSnap), len(wantSnap))
	}
	for ip, kind := range wantSnap {
		if gotSnap[ip] != kind {
			t.Fatalf("greylist entry %v does not round trip", ip)
		}
	}
	if got.Health.Round != want.Health.Round || got.Health.Completed != want.Health.Completed {
		t.Fatal("health does not round trip")
	}
}

// TestSaveLoadRunV2 round-trips the v2 columnar format on a real census
// run, including an analysis-equivalence check.
func TestSaveLoadRunV2(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	got := roundTrip(t, r1, func(w *bytes.Buffer, r *Run) error { return SaveRun(w, r) })
	checkRunEqual(t, got, r1)

	c1, _ := Combine(r1)
	c2, _ := Combine(got)
	n1 := len(AnalyzeAll(cities.Default(), c1, core.Options{}, 2, 0))
	n2 := len(AnalyzeAll(cities.Default(), c2, core.Options{}, 2, 0))
	if n1 != n2 {
		t.Errorf("loaded run analyzes differently: %d vs %d", n1, n2)
	}
}

// TestSaveLoadRunLegacy proves LoadRun still reads generation-1 gob+flate
// archives transparently.
func TestSaveLoadRunLegacy(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	got := roundTrip(t, r1, func(w *bytes.Buffer, r *Run) error { return SaveRunLegacy(w, r) })
	checkRunEqual(t, got, r1)
}

// TestSaveRunDeterministic pins the satellite: saving the same run twice
// yields identical bytes (the greylist is sorted, the meta holds no
// maps).
func TestSaveRunDeterministic(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	var a, b bytes.Buffer
	if err := SaveRun(&a, r1); err != nil {
		t.Fatal(err)
	}
	if err := SaveRun(&b, r1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("SaveRun is not byte-deterministic")
	}
	if !strings.HasPrefix(a.String(), runMagicV2) {
		t.Fatal("SaveRun does not emit the v2 magic")
	}
}

// TestV2SmallerThanLegacy keeps the format honest on size: the columnar
// encoding of a real run must not be larger than gob+flate.
func TestV2SmallerThanLegacy(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	var v2, legacy bytes.Buffer
	if err := SaveRun(&v2, r1); err != nil {
		t.Fatal(err)
	}
	if err := SaveRunLegacy(&legacy, r1); err != nil {
		t.Fatal(err)
	}
	t.Logf("v2 %d bytes, legacy gob+flate %d bytes (%d x %d matrix)",
		v2.Len(), legacy.Len(), len(r1.VPs), len(r1.Targets))
	if v2.Len() > legacy.Len() {
		t.Errorf("v2 run (%d bytes) larger than legacy (%d bytes)", v2.Len(), legacy.Len())
	}
}

// TestLoadRunRejectsCorruptV2 exercises the decoder's bounds checks on
// targeted corruptions (the fuzz test covers the long tail).
func TestLoadRunRejectsCorruptV2(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	var buf bytes.Buffer
	if err := SaveRun(&buf, r1); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic_only", []byte(runMagicV2)},
		{"wrong_magic", []byte("ACMR9\nrest of the file")},
		{"bad_flags", append([]byte(runMagicV2), 0xFF)},
		{"truncated_half", full[:len(full)/2]},
		{"truncated_tail", full[:len(full)-3]},
		{"trailing_garbage", append(append([]byte{}, full...), 1, 2, 3)},
	} {
		if _, err := LoadRun(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: corrupt run accepted", tc.name)
		}
	}
}
