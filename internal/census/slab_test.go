package census

import (
	"testing"
	"unsafe"
)

func TestSlabArenaPacksRows(t *testing.T) {
	const rowLen = 100
	a := newSlabArena(rowLen)
	rows := a.alloc(7)
	if len(rows) != 7 {
		t.Fatalf("alloc(7) returned %d rows", len(rows))
	}
	for i, row := range rows {
		if len(row) != rowLen {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), rowLen)
		}
		if cap(row) != rowLen {
			t.Fatalf("row %d cap %d leaks into the next row", i, cap(row))
		}
	}
	if a.blocks != 1 {
		t.Fatalf("7 small rows cost %d blocks, want 1", a.blocks)
	}
	// Rows of one alloc are packed back to back in one block.
	for i := 0; i+1 < len(rows); i++ {
		lo := uintptr(unsafe.Pointer(&rows[i][0]))
		hi := uintptr(unsafe.Pointer(&rows[i+1][0]))
		if hi-lo != rowLen*4 {
			t.Fatalf("rows %d and %d are %d bytes apart, want %d", i, i+1, hi-lo, rowLen*4)
		}
	}
	// Rows do not alias: distinct writes stay distinct.
	for i, row := range rows {
		for j := range row {
			row[j] = int32(i)
		}
	}
	for i, row := range rows {
		for j, v := range row {
			if v != int32(i) {
				t.Fatalf("row %d cell %d clobbered to %d", i, j, v)
			}
		}
	}
}

func TestSlabArenaBlockCapSplits(t *testing.T) {
	// A row wider than half the block cap forces one block per row.
	rowLen := slabBlockBytes / 4
	a := newSlabArena(rowLen)
	rows := a.alloc(3)
	if len(rows) != 3 || a.blocks != 3 {
		t.Fatalf("3 cap-sized rows: got %d rows in %d blocks, want 3 in 3", len(rows), a.blocks)
	}
}

func TestSlabArenaZeroRowLen(t *testing.T) {
	a := newSlabArena(0)
	rows := a.alloc(2)
	for i, row := range rows {
		if row == nil || len(row) != 0 {
			t.Fatalf("zero-target row %d = %v, want empty non-nil", i, row)
		}
	}
}
