package census

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

// faultPlan builds a plan or fails the test.
func faultPlan(t *testing.T, cfg netsim.FaultConfig) *netsim.FaultPlan {
	t.Helper()
	p, err := netsim.NewFaultPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// predict classifies the vantage points under a plan for one round the way
// the census retry loop will experience them: healthy, recovering after one
// retry (non-sticky, default RecoveryAttempts), or quarantined (sticky,
// crashing on every attempt until the budget runs out).
func predict(vps []platform.VP, plan *netsim.FaultPlan, round uint64) (healthy, recovering, quarantined []platform.VP) {
	for _, vp := range vps {
		switch c, s := plan.Crashes(vp.ID, round); {
		case !c:
			healthy = append(healthy, vp)
		case s:
			quarantined = append(quarantined, vp)
		default:
			recovering = append(recovering, vp)
		}
	}
	return
}

// TestCensusSurvivesVPCrashes is the pipeline-hardening acceptance test: a
// fault plan crashes a large share of the vantage points mid-census (some
// recoverably, some for good), and the census must complete, retry and
// quarantine exactly as the deterministic plan predicts, keep the surviving
// rows identical to a faultless census, and keep quarantined rows partial
// but consistent.
func TestCensusSurvivesVPCrashes(t *testing.T) {
	w, h, _, _, _ := testbed(t)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.Sample(30, 5)
	const round = 11
	cfg := Config{Seed: 9, MaxAttempts: 3, RetryBackoff: -1}

	plan := faultPlan(t, netsim.FaultConfig{Seed: 1213, CrashFraction: 0.4, CrashStickiness: 0.5})
	healthy, recovering, quarantined := predict(vps, plan, round)
	if frac := float64(len(recovering)+len(quarantined)) / float64(len(vps)); frac < 0.2 {
		t.Fatalf("plan crashes only %.2f of VPs; the test needs >= 0.2", frac)
	}
	if len(recovering) == 0 || len(quarantined) == 0 {
		t.Fatalf("plan lacks variety: %d recovering, %d quarantined", len(recovering), len(quarantined))
	}

	clean, err := ExecuteContext(context.Background(), w, vps, h, nil, round, cfg)
	if err != nil {
		t.Fatalf("faultless census errored: %v", err)
	}
	faulty, err := ExecuteContext(context.Background(), w.WithFaults(plan), vps, h, nil, round, cfg)
	if err == nil {
		t.Fatal("census with quarantined VPs returned no error")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("error does not name the quarantine: %v", err)
	}

	// The health summary must match the plan's predictions exactly.
	hl := faulty.Health
	if hl.Round != round || hl.VPs != len(vps) {
		t.Errorf("health identity: %+v", hl)
	}
	if hl.Completed != len(healthy)+len(recovering) {
		t.Errorf("completed = %d, want %d", hl.Completed, len(healthy)+len(recovering))
	}
	if hl.Recovered != len(recovering) {
		t.Errorf("recovered = %d, want %d", hl.Recovered, len(recovering))
	}
	// A recovering VP retries once; a sticky VP burns the whole budget.
	wantRetries := len(recovering) + len(quarantined)*(cfg.MaxAttempts-1)
	if hl.Retries != wantRetries {
		t.Errorf("retries = %d, want %d", hl.Retries, wantRetries)
	}
	var wantQ []string
	for _, vp := range quarantined {
		wantQ = append(wantQ, vp.Name)
	}
	gotQ := append([]string(nil), hl.Quarantined...)
	sort.Strings(wantQ)
	sort.Strings(gotQ)
	if len(gotQ) != len(wantQ) {
		t.Fatalf("quarantined = %v, want %v", gotQ, wantQ)
	}
	for i := range gotQ {
		if gotQ[i] != wantQ[i] {
			t.Fatalf("quarantined = %v, want %v", gotQ, wantQ)
		}
	}
	if !hl.Degraded() {
		t.Error("degraded round not flagged")
	}
	// Every quarantined row kept the samples its attempts gathered: no row
	// is silently empty.
	if hl.PartialRows != len(quarantined) || hl.EmptyRows != 0 {
		t.Errorf("rows: %d partial, %d empty; want %d partial, 0 empty",
			hl.PartialRows, hl.EmptyRows, len(quarantined))
	}
	if hl.String() == "" {
		t.Error("empty health string")
	}

	// Per-VP attempt records.
	byName := map[string]VPHealth{}
	for _, vh := range hl.PerVP {
		byName[vh.VP] = vh
	}
	for _, vp := range healthy {
		if vh := byName[vp.Name]; vh.Attempts != 1 || vh.Recovered || vh.Quarantined {
			t.Errorf("healthy %s: %+v", vp.Name, vh)
		}
	}
	for _, vp := range recovering {
		if vh := byName[vp.Name]; vh.Attempts != 2 || !vh.Recovered || vh.Quarantined {
			t.Errorf("recovering %s: %+v", vp.Name, vh)
		}
	}
	for _, vp := range quarantined {
		vh := byName[vp.Name]
		if vh.Attempts != cfg.MaxAttempts || !vh.Quarantined || vh.Err == "" {
			t.Errorf("quarantined %s: %+v", vp.Name, vh)
		}
	}

	// Surviving rows — healthy and recovered alike — must be sample-for-
	// sample identical to the faultless census; quarantined rows must be a
	// strict, consistent subset.
	quarantinedSet := map[string]bool{}
	for _, vp := range quarantined {
		quarantinedSet[vp.Name] = true
	}
	for vi := range vps {
		cRow, fRow := clean.RTTus[vi], faulty.RTTus[vi]
		if quarantinedSet[vps[vi].Name] {
			fSamples, cSamples := 0, 0
			for ti := range fRow {
				if cRow[ti] != noSample {
					cSamples++
				}
				if fRow[ti] == noSample {
					continue
				}
				fSamples++
				if fRow[ti] != cRow[ti] {
					t.Fatalf("quarantined %s row disagrees with faultless census at target %d: %d vs %d",
						vps[vi].Name, ti, fRow[ti], cRow[ti])
				}
			}
			if fSamples == 0 || fSamples >= cSamples {
				t.Errorf("quarantined %s row has %d samples, want a non-empty strict subset of %d",
					vps[vi].Name, fSamples, cSamples)
			}
			continue
		}
		for ti := range cRow {
			if fRow[ti] != cRow[ti] {
				t.Fatalf("surviving VP %s row diverged at target %d: %d vs %d",
					vps[vi].Name, ti, fRow[ti], cRow[ti])
			}
		}
	}

	// The degraded census still analyzes soundly: detection over the
	// surviving samples keeps precision 1.
	c, err := Combine(faulty)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := AnalyzeAll(cities.Default(), c, core.Options{}, 2, 0)
	if len(outcomes) == 0 {
		t.Fatal("degraded census detected nothing")
	}
	for _, o := range outcomes {
		if !w.IsAnycast(o.Prefix()) {
			t.Fatalf("degraded census false positive: %v", o.Prefix())
		}
	}

	// And the whole degraded run is reproducible.
	again, _ := ExecuteContext(context.Background(), w.WithFaults(plan), vps, h, nil, round, cfg)
	h2 := again.Health
	if h2.Completed != hl.Completed || h2.Retries != hl.Retries ||
		h2.Recovered != hl.Recovered || len(h2.Quarantined) != len(hl.Quarantined) ||
		h2.PartialRows != hl.PartialRows || h2.EmptyRows != hl.EmptyRows {
		t.Errorf("re-run health diverged: %v vs %v", h2, hl)
	}
}

func TestCensusAllStickyCrashesQuarantine(t *testing.T) {
	w, h, _, _, _ := testbed(t)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.Sample(12, 6)
	const round = 12
	cfg := Config{Seed: 9, MaxAttempts: 2, RetryBackoff: -1}

	plan := faultPlan(t, netsim.FaultConfig{Seed: 4, CrashFraction: 0.5, CrashStickiness: 1})
	_, recovering, quarantined := predict(vps, plan, round)
	if len(recovering) != 0 {
		t.Fatalf("stickiness 1 left %d VPs recoverable", len(recovering))
	}
	if len(quarantined) == 0 {
		t.Fatal("plan quarantines nobody")
	}

	run, err := ExecuteContext(context.Background(), w.WithFaults(plan), vps, h, nil, round, cfg)
	if err == nil {
		t.Fatal("fully sticky plan produced no error")
	}
	hl := run.Health
	if hl.Recovered != 0 || len(hl.Quarantined) != len(quarantined) {
		t.Errorf("health = %v, want 0 recovered, %d quarantined", hl, len(quarantined))
	}
	if hl.Retries != len(quarantined)*(cfg.MaxAttempts-1) {
		t.Errorf("retries = %d", hl.Retries)
	}
	for _, vh := range hl.PerVP {
		if vh.Quarantined && vh.Attempts != cfg.MaxAttempts {
			t.Errorf("%s quarantined after %d attempts, want the full budget %d",
				vh.VP, vh.Attempts, cfg.MaxAttempts)
		}
	}
}

func TestCensusMaxAttemptsOneDisablesRetry(t *testing.T) {
	w, h, _, _, _ := testbed(t)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.Sample(10, 7)
	const round = 13
	plan := faultPlan(t, netsim.FaultConfig{Seed: 2, CrashFraction: 0.5})
	_, recovering, quarantined := predict(vps, plan, round)
	if len(recovering)+len(quarantined) == 0 {
		t.Fatal("plan crashes nobody")
	}
	run, err := ExecuteContext(context.Background(), w.WithFaults(plan), vps, h, nil, round,
		Config{Seed: 9, MaxAttempts: 1, RetryBackoff: -1})
	if err == nil {
		t.Fatal("crashes with no retry budget produced no error")
	}
	hl := run.Health
	if hl.Retries != 0 || hl.Recovered != 0 {
		t.Errorf("MaxAttempts=1 retried anyway: %v", hl)
	}
	// Without retries every crashed VP — sticky or not — is quarantined.
	if len(hl.Quarantined) != len(recovering)+len(quarantined) {
		t.Errorf("quarantined %d, want %d", len(hl.Quarantined), len(recovering)+len(quarantined))
	}
}

func TestCombineRejectsDivergentTargets(t *testing.T) {
	// Regression: Combine used to compare target-list lengths only, so two
	// censuses over different hitlists of the same size would min-combine
	// RTTs of unrelated targets. Contents must match, index by index.
	_, _, _, r1, _ := testbed(t)
	swapped := make([]netsim.IP, len(r1.Targets))
	copy(swapped, r1.Targets)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	bad := &Run{Targets: swapped}
	_, err := Combine(r1, bad)
	if err == nil {
		t.Fatal("divergent target lists accepted")
	}
	if !strings.Contains(err.Error(), "diverges at index 0") {
		t.Errorf("error does not point at the first mismatch: %v", err)
	}
}

func TestRunHealthRoundTrip(t *testing.T) {
	// The health summary must survive the run's storage format.
	w, h, _, _, _ := testbed(t)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.Sample(8, 8)
	plan := faultPlan(t, netsim.FaultConfig{Seed: 6, CrashFraction: 0.6, CrashStickiness: 1})
	run, _ := ExecuteContext(context.Background(), w.WithFaults(plan), vps, h, nil, 14,
		Config{Seed: 9, MaxAttempts: 2, RetryBackoff: -1})
	if !run.Health.Degraded() {
		t.Skip("plan quarantined nobody at this seed")
	}
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	rt, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Health.Round != run.Health.Round ||
		len(rt.Health.Quarantined) != len(run.Health.Quarantined) ||
		rt.Health.Retries != run.Health.Retries ||
		rt.Health.PartialRows != run.Health.PartialRows {
		t.Errorf("health does not round trip: %v vs %v", rt.Health, run.Health)
	}
}

func TestCampaignHealthAggregation(t *testing.T) {
	var c CampaignHealth
	if c.Degraded() {
		t.Error("zero campaign degraded")
	}
	c.Add(RunHealth{Round: 1, VPs: 10, Completed: 9, Retries: 2, Recovered: 1,
		Quarantined: []string{"vpB", "vpA"}, PartialRows: 2, EmptyRows: 1})
	c.Add(RunHealth{Round: 2, VPs: 10, Completed: 10, Retries: 1, Recovered: 1,
		Quarantined: []string{"vpA", "vpC"}})
	if c.Rounds != 2 || c.VPRuns != 20 || c.Completed != 19 || c.Retries != 3 || c.Recovered != 2 {
		t.Errorf("campaign counters: %+v", c)
	}
	// The quarantined union is deduplicated and sorted.
	want := []string{"vpA", "vpB", "vpC"}
	if len(c.Quarantined) != len(want) {
		t.Fatalf("quarantined union = %v", c.Quarantined)
	}
	for i, vp := range want {
		if c.Quarantined[i] != vp {
			t.Fatalf("quarantined union = %v, want %v", c.Quarantined, want)
		}
	}
	if !c.Degraded() || c.String() == "" {
		t.Error("degraded campaign not reported")
	}
}
