package census

// slab.go — the flat-slab arena behind the combined matrix.
//
// At paper scale the combined matrix is ~6.6M targets × hundreds of
// vantage points. Allocating each row separately leaves the heap holding
// hundreds of multi-megabyte objects: every GC cycle scans the [][]int32
// spine and each row header, and the allocator fragments around the
// odd-sized rows. The arena instead carves rows out of a handful of large
// contiguous []int32 blocks — pointer-free memory the collector never
// scans past the block header — so a full paper-scale matrix costs a few
// dozen allocations total instead of one per VP row.
//
// Rows stay ordinary []int32 slices (three-word headers into a block), so
// every consumer of Combined.RTTus — the fold workers, the analyzer, the
// experiments, the codecs — is untouched, and byte-identity with the
// per-row-allocation layout is structural (TestCensusDeterminism pins it
// via the CampaignConfig.HeapRows escape hatch).

const (
	// slabBlockBytes caps one arena block. Blocks are exact-fit below the
	// cap (a round registering 24 fresh VPs over 1M targets allocates one
	// 96 MB block, not a rounded-up power of two), so the cap only splits
	// genuinely huge registrations: 261 VPs × 6.6M targets lands in ~27
	// blocks instead of one 6.9 GB allocation the OS may refuse to place.
	slabBlockBytes = 256 << 20
)

// slabArena carves fixed-width []int32 rows from large contiguous blocks.
// The zero value is not usable; construct with newSlabArena. Not safe for
// concurrent use — the campaign carves rows serially while registering a
// round's vantage points, before the parallel fold starts.
type slabArena struct {
	rowLen int
	cur    []int32 // unused tail of the newest block
	blocks int
	rows   int
}

func newSlabArena(rowLen int) *slabArena {
	return &slabArena{rowLen: rowLen}
}

// alloc carves n fresh rows, each rowLen cells, zero-valued. Rows from one
// call are packed back to back; a call larger than the block cap splits
// into exact-fit blocks of at most slabBlockBytes each.
func (a *slabArena) alloc(n int) [][]int32 {
	rows := make([][]int32, 0, n)
	if a.rowLen == 0 {
		// Zero-target campaigns still register VPs; their rows are empty
		// but non-nil, matching make([]int32, 0).
		for i := 0; i < n; i++ {
			rows = append(rows, make([]int32, 0))
		}
		return rows
	}
	for len(rows) < n {
		if len(a.cur) < a.rowLen {
			bRows := n - len(rows)
			if max := slabBlockBytes / (4 * a.rowLen); bRows > max && max >= 1 {
				bRows = max
			}
			a.cur = make([]int32, bRows*a.rowLen)
			a.blocks++
		}
		rows = append(rows, a.cur[:a.rowLen:a.rowLen])
		a.cur = a.cur[a.rowLen:]
	}
	a.rows += n
	return rows
}

// noSampleChunk is a pre-filled pattern source for fillNoSample: copying
// from it is a memmove, which beats a per-element store loop (Go only
// lowers zero fills to memclr, not arbitrary patterns).
var noSampleChunk = func() []int32 {
	c := make([]int32, 8192)
	for i := range c {
		c[i] = noSample
	}
	return c
}()

// fillNoSample sets every cell of row to the noSample sentinel.
func fillNoSample(row []int32) {
	for len(row) > 0 {
		row = row[copy(row, noSampleChunk):]
	}
}
