package census

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

// TestPipelinedSurvivesVPCrashes exercises the pipelined executor's
// failure policy, which mirrors the cluster coordinator: failed units
// retry on the census backoff schedule, recoverable crashes converge to
// the faultless rows (RTT draws are attempt-invariant), and sticky
// crashes quarantine the VP with nothing folded (only successful probes
// fold — unlike ExecuteContext, which keeps a quarantined VP's partial
// sink writes).
func TestPipelinedSurvivesVPCrashes(t *testing.T) {
	w, h, _, _, _ := testbed(t)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.Sample(30, 5)
	const round = 11
	cfg := Config{Seed: 9, MaxAttempts: 3, RetryBackoff: -1, Workers: 4}
	pc := PipelineConfig{SpanTargets: 64}

	plan := faultPlan(t, netsim.FaultConfig{Seed: 1213, CrashFraction: 0.4, CrashStickiness: 0.5})
	healthy, recovering, quarantined := predict(vps, plan, round)
	if len(recovering) == 0 || len(quarantined) == 0 {
		t.Fatalf("plan lacks variety: %d recovering, %d quarantined", len(recovering), len(quarantined))
	}

	clean := NewCampaign(CampaignConfig{Census: cfg})
	if _, err := clean.ExecuteRoundPipelined(context.Background(), w, vps, h, nil, round, pc); err != nil {
		t.Fatalf("faultless pipelined round errored: %v", err)
	}

	faulty := NewCampaign(CampaignConfig{Census: cfg})
	sum, err := faulty.ExecuteRoundPipelined(context.Background(), w.WithFaults(plan), vps, h, nil, round, pc)
	if err == nil {
		t.Fatal("pipelined round with quarantined VPs returned no error")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("error does not name the quarantine: %v", err)
	}

	hl := sum.Health
	if hl.Round != round || hl.VPs != len(vps) {
		t.Errorf("health identity: %+v", hl)
	}
	if hl.Completed != len(healthy)+len(recovering) {
		t.Errorf("completed = %d, want %d", hl.Completed, len(healthy)+len(recovering))
	}
	if hl.Recovered != len(recovering) {
		t.Errorf("recovered = %d, want %d", hl.Recovered, len(recovering))
	}
	var wantQ []string
	for _, vp := range quarantined {
		wantQ = append(wantQ, vp.Name)
	}
	gotQ := append([]string(nil), hl.Quarantined...)
	sort.Strings(wantQ)
	sort.Strings(gotQ)
	if !reflect.DeepEqual(gotQ, wantQ) {
		t.Fatalf("quarantined = %v, want %v", gotQ, wantQ)
	}
	// Only successful units fold, and a sticky VP never has one: its
	// combined row is empty, not partial.
	if hl.EmptyRows != len(quarantined) {
		t.Errorf("empty rows = %d, want %d", hl.EmptyRows, len(quarantined))
	}

	// Surviving rows are byte-identical to the faultless round's.
	cc, fc := clean.Combined(), faulty.Combined()
	quarNames := make(map[string]bool, len(wantQ))
	for _, name := range wantQ {
		quarNames[name] = true
	}
	for slot, vp := range fc.VPs {
		if quarNames[vp.Name] {
			for ti, v := range fc.RTTus[slot] {
				if v != NoSample {
					t.Fatalf("quarantined VP %s folded a sample at target %d", vp.Name, ti)
				}
			}
			continue
		}
		if !reflect.DeepEqual(fc.RTTus[slot], cc.RTTus[slot]) {
			t.Fatalf("surviving VP %s row differs from the faultless round", vp.Name)
		}
	}
}

// TestPipelinedCancellation: a cancelled context aborts the round without
// deadlocking; the campaign's shard round is still closed so later rounds
// can run.
func TestPipelinedCancellation(t *testing.T) {
	w, h, _, _, _ := testbed(t)
	pl := platform.PlanetLab(cities.Default())
	vps := pl.Sample(8, 3)
	cfg := Config{Seed: 7, RetryBackoff: -1, Workers: 2}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cp := NewCampaign(CampaignConfig{Census: cfg})
	if _, err := cp.ExecuteRoundPipelined(ctx, w, vps, h, nil, 1, PipelineConfig{SpanTargets: 32}); err == nil {
		t.Fatal("cancelled round returned no error")
	}
	// The round must be closed: a fresh round on the same campaign works.
	if _, err := cp.ExecuteRoundPipelined(context.Background(), w, vps, h, nil, 2, PipelineConfig{SpanTargets: 32}); err != nil {
		t.Fatalf("round after cancelled round: %v", err)
	}
}
