package census

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// This file is the streaming data path of the campaign. The batch path
// (Execute every round, keep every Run, Combine at the end) holds
// rounds × V × T dense int32 cells alive simultaneously — the exact
// failure mode the paper's own Table 1 rewrite attacked (79 GB of text vs
// 6 GB of binary). A Campaign instead folds each finished round into the
// combined minimum-RTT matrix and lets the round's rows go: peak memory is
// O(one run + combined) no matter how many censuses the campaign runs.
//
// The fold is exact, not approximate: per-cell minimum is commutative and
// associative and the greylist merge is a set union, so the streamed
// Combined is byte-identical to the batch Combine of the same rounds
// (TestCensusDeterminism proves it across worker counts and shard sizes).

// CampaignConfig tunes a streaming campaign.
type CampaignConfig struct {
	// Census tunes each probing round (rate, seed, workers, retries).
	Census Config
	// FoldWorkers bounds the goroutines folding a finished round into
	// the combined matrix; zero means GOMAXPROCS. The fold result does
	// not depend on the worker count.
	FoldWorkers int
	// ShardTargets is the width (in targets) of one fold work unit; the
	// combined matrix is sharded column-wise so workers never share a
	// cell. Zero picks a width that spreads one VP row over a few
	// shards. The fold result does not depend on the shard size.
	ShardTargets int
	// RetainRuns keeps every folded *Run alive (Runs) for analyses
	// that need individual rounds — the Fig. 4 funnel and the per-census
	// ablations. Off, each round's matrix is released after its fold and
	// peak memory stays bounded.
	RetainRuns bool
	// OnRun, when set, observes every finished round after it is folded
	// and before it is discarded: the hook is where cmd/census persists
	// rounds to disk in the v2 format. An error aborts the campaign.
	OnRun func(*Run) error
}

func (c CampaignConfig) foldWorkers() int {
	if c.FoldWorkers > 0 {
		return c.FoldWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Campaign accumulates census rounds into a combined minimum-RTT matrix as
// they complete. The zero value is not usable; construct with NewCampaign.
// Campaign is not safe for concurrent FoldRun calls: rounds fold in
// sequence (each fold is internally parallel).
type Campaign struct {
	cfg CampaignConfig

	combined *Combined
	byID     map[int]int // vp.ID -> row slot in combined
	grey     *prober.Greylist
	health   CampaignHealth
	runs     []*Run
}

// NewCampaign returns an empty streaming campaign.
func NewCampaign(cfg CampaignConfig) *Campaign {
	return &Campaign{
		cfg:  cfg,
		byID: make(map[int]int),
		grey: prober.NewGreylist(),
	}
}

// RoundSummary is the lightweight per-round record a streaming campaign
// keeps after the round's matrix is gone: what cmd/census logs, without
// the O(V×T) payload.
type RoundSummary struct {
	Round       uint64
	VPs         int
	Probes      int
	EchoTargets int
	GreylistLen int
	Health      RunHealth
	Duration    time.Duration
}

// FoldRun merges one finished round into the campaign: per-cell minimum
// into the combined matrix, set union into the campaign greylist, health
// into the campaign summary. The run's target list must match the rounds
// folded before it. After FoldRun returns the campaign holds no reference
// to the run's matrix unless RetainRuns is set.
func (cp *Campaign) FoldRun(run *Run) error {
	if cp.combined == nil {
		cp.combined = &Combined{
			Targets: run.Targets,
			RTTus:   make([][]int32, 0, len(run.VPs)),
		}
	} else {
		if len(run.Targets) != len(cp.combined.Targets) {
			return fmt.Errorf("census: round %d has %d targets, campaign has %d",
				run.Round, len(run.Targets), len(cp.combined.Targets))
		}
		for ti, tgt := range run.Targets {
			if tgt != cp.combined.Targets[ti] {
				return fmt.Errorf("census: round %d target list diverges at index %d (%v vs %v)",
					run.Round, ti, tgt, cp.combined.Targets[ti])
			}
		}
	}
	c := cp.combined
	c.Rounds++

	// Register the round's vantage points serially: new VPs extend the
	// union in first-seen order (matching the batch Combine ordering),
	// existing ones map to their slot.
	slots := make([]int, len(run.VPs))
	fresh := make([]bool, len(run.VPs))
	for vi, vp := range run.VPs {
		si, ok := cp.byID[vp.ID]
		if !ok {
			si = len(c.VPs)
			cp.byID[vp.ID] = si
			c.VPs = append(c.VPs, vp)
			c.RTTus = append(c.RTTus, nil)
			fresh[vi] = true
		}
		slots[vi] = si
	}

	// Fold the rows in column shards pulled from an atomic counter: every
	// combined cell is written by exactly one worker, so the result is
	// identical at any worker count or shard width. Fresh rows are copied
	// (the batch path copies the first-seen row, noSample cells included),
	// existing rows min-merge.
	nT := len(c.Targets)
	shard := cp.cfg.ShardTargets
	if shard <= 0 {
		shard = nT/(4*cp.cfg.foldWorkers()) + 1
	}
	shardsPerRow := (nT + shard - 1) / shard
	if shardsPerRow == 0 {
		shardsPerRow = 1 // zero-target campaigns still register VPs
	}
	for vi := range run.VPs {
		if fresh[vi] {
			// Allocation happens once, outside the sharded loop.
			c.RTTus[slots[vi]] = make([]int32, nT)
		}
	}
	total := len(run.VPs) * shardsPerRow
	workers := cp.cfg.foldWorkers()
	if workers > total {
		workers = total
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				unit := int(next.Add(1) - 1)
				if unit >= total {
					return
				}
				vi := unit / shardsPerRow
				lo := (unit % shardsPerRow) * shard
				hi := lo + shard
				if hi > nT {
					hi = nT
				}
				src := run.RTTus[vi][lo:hi]
				dst := c.RTTus[slots[vi]][lo:hi]
				if fresh[vi] {
					copy(dst, src)
					continue
				}
				for t, v := range src {
					if v < 0 {
						continue
					}
					if dst[t] < 0 || v < dst[t] {
						dst[t] = v
					}
				}
			}
		}()
	}
	wg.Wait()

	cp.grey.Merge(run.Greylist)
	cp.health.Add(run.Health)
	if cp.cfg.RetainRuns {
		cp.runs = append(cp.runs, run)
	}
	if cp.cfg.OnRun != nil {
		if err := cp.cfg.OnRun(run); err != nil {
			return fmt.Errorf("census: campaign round %d hook: %w", run.Round, err)
		}
	}
	return nil
}

// ExecuteRound probes one census round and folds it into the campaign,
// returning the round's summary. Per-VP probing errors degrade rather than
// abort (quarantined VPs keep their partial rows, exactly as
// ExecuteContext); the round still folds, and the error is returned for
// surfacing. Unless RetainRuns is set the round's matrix is unreferenced
// when ExecuteRound returns.
func (cp *Campaign) ExecuteRound(ctx context.Context, w *netsim.World, vps []platform.VP, h *hitlist.Hitlist, blacklist *prober.Greylist, round uint64) (RoundSummary, error) {
	t0 := time.Now()
	run, err := ExecuteContext(ctx, w, vps, h, blacklist, round, cp.cfg.Census)
	if ctx.Err() != nil {
		return RoundSummary{Round: round}, err
	}
	sum := RoundSummary{
		Round:       round,
		VPs:         len(run.VPs),
		Probes:      run.TotalProbes(),
		EchoTargets: run.EchoTargets(),
		GreylistLen: run.Greylist.Len(),
		Health:      run.Health,
	}
	if ferr := cp.FoldRun(run); ferr != nil {
		return sum, ferr
	}
	sum.Duration = time.Since(t0)
	return sum, err
}

// Combined returns the minimum-RTT combination of every round folded so
// far, or nil before the first fold. The matrix is live: folding further
// rounds keeps updating it.
func (cp *Campaign) Combined() *Combined { return cp.combined }

// Greylist returns the union of every folded round's greylist.
func (cp *Campaign) Greylist() *prober.Greylist { return cp.grey }

// Health returns the campaign health aggregated over the folded rounds.
func (cp *Campaign) Health() CampaignHealth { return cp.health }

// Runs returns the retained rounds (RetainRuns only; nil otherwise).
func (cp *Campaign) Runs() []*Run { return cp.runs }

// StreamCombine is the one-shot form of the streaming fold: source is
// called with 0..rounds-1 and each returned run is folded and released.
// It is the memory-bounded equivalent of Combine(source(0..rounds-1)...).
func StreamCombine(cfg CampaignConfig, rounds int, source func(i int) (*Run, error)) (*Combined, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("census: nothing to combine")
	}
	cp := NewCampaign(cfg)
	for i := 0; i < rounds; i++ {
		run, err := source(i)
		if err != nil {
			return nil, err
		}
		if err := cp.FoldRun(run); err != nil {
			return nil, err
		}
	}
	return cp.Combined(), nil
}
