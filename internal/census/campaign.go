package census

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// This file is the streaming data path of the campaign. The batch path
// (Execute every round, keep every Run, Combine at the end) holds
// rounds × V × T dense int32 cells alive simultaneously — the exact
// failure mode the paper's own Table 1 rewrite attacked (79 GB of text vs
// 6 GB of binary). A Campaign instead folds each finished round into the
// combined minimum-RTT matrix and lets the round's rows go: peak memory is
// O(one run + combined) no matter how many censuses the campaign runs.
//
// The fold is exact, not approximate: per-cell minimum is commutative and
// associative and the greylist merge is a set union, so the streamed
// Combined is byte-identical to the batch Combine of the same rounds
// (TestCensusDeterminism proves it across worker counts and shard sizes).

// CampaignConfig tunes a streaming campaign.
type CampaignConfig struct {
	// Census tunes each probing round (rate, seed, workers, retries).
	Census Config
	// FoldWorkers bounds the goroutines folding a finished round into
	// the combined matrix; zero means GOMAXPROCS. The fold result does
	// not depend on the worker count.
	FoldWorkers int
	// ShardTargets is the width (in targets) of one fold work unit; the
	// combined matrix is sharded column-wise so workers never share a
	// cell. Zero picks a width that spreads one VP row over a few
	// shards. The fold result does not depend on the shard size.
	ShardTargets int
	// RetainRuns keeps every folded *Run alive (Runs) for analyses
	// that need individual rounds — the Fig. 4 funnel and the per-census
	// ablations. Off, each round's matrix is released after its fold and
	// peak memory stays bounded.
	RetainRuns bool
	// OnRun, when set, observes every finished round after it is folded
	// and before it is discarded: the hook is where cmd/census persists
	// rounds to disk in the v2 format. An error aborts the campaign.
	OnRun func(*Run) error
	// Metrics, when set, receives fold/analysis observations (rounds
	// folded, fold and analyze latency, dirty-set and greylist sizes,
	// certificate hit counters). The instrument set usually outlives the
	// campaign: daemons register one Metrics per process and thread it
	// through every campaign they build.
	Metrics *Metrics
	// HeapRows allocates each combined-matrix row as its own heap object
	// instead of carving rows from the flat slab arena (slab.go). The
	// slab is the default — at paper scale per-row allocation leaves
	// hundreds of multi-megabyte GC-scanned objects where the arena uses
	// a handful of pointer-free blocks. The fold result is byte-identical
	// either way (TestCensusDeterminism pins slab vs heap); the knob
	// exists for that comparison and for callers that want individual
	// rows to be collectable.
	HeapRows bool
}

func (c CampaignConfig) foldWorkers() int {
	if c.FoldWorkers > 0 {
		return c.FoldWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Campaign accumulates census rounds into a combined minimum-RTT matrix as
// they complete. The zero value is not usable; construct with NewCampaign.
// Campaign is not safe for concurrent FoldRun calls: rounds fold in
// sequence (each fold is internally parallel).
type Campaign struct {
	cfg CampaignConfig

	combined *Combined
	byID     map[int]int // vp.ID -> row slot in combined
	arena    *slabArena  // backs combined rows unless cfg.HeapRows
	grey     *prober.Greylist
	health   CampaignHealth
	runs     []*Run

	// dirty is a bitmap over targets: bit t is set when some combined
	// min-RTT cell of target t improved or a VP newly answered it since
	// the last TakeDirty. Fold workers own disjoint column shards but
	// share bitmap words at shard boundaries, so bits merge with CAS.
	dirty []uint32

	// Distributed-fold round state (shard.go): the number of the round
	// currently open for shard-wise folding, and which combined row
	// slots belong to it. BeginRound opens a round, FoldShard merges
	// partial rows in any order, FinishRound closes it.
	shardRound uint64
	shardOpen  bool
	shardSlots []bool

	analyzer     *Analyzer
	analysisWall atomic.Int64 // cumulative AnalyzeDirty nanoseconds
}

// NewCampaign returns an empty streaming campaign.
func NewCampaign(cfg CampaignConfig) *Campaign {
	return &Campaign{
		cfg:  cfg,
		byID: make(map[int]int),
		grey: prober.NewGreylist(),
	}
}

// RoundSummary is the lightweight per-round record a streaming campaign
// keeps after the round's matrix is gone: what cmd/census logs, without
// the O(V×T) payload.
type RoundSummary struct {
	Round       uint64
	VPs         int
	Probes      int
	EchoTargets int
	GreylistLen int
	Health      RunHealth
	Duration    time.Duration
}

// FoldRun merges one finished round into the campaign: per-cell minimum
// into the combined matrix, set union into the campaign greylist, health
// into the campaign summary. The run's target list must match the rounds
// folded before it. After FoldRun returns the campaign holds no reference
// to the run's matrix unless RetainRuns is set.
func (cp *Campaign) FoldRun(run *Run) error {
	foldStart := time.Now()
	if cp.shardOpen {
		return fmt.Errorf("census: round %d is folding by shards; FinishRound first", cp.shardRound)
	}
	if cp.combined == nil {
		cp.combined = &Combined{
			Targets: run.Targets,
			RTTus:   make([][]int32, 0, len(run.VPs)),
		}
	} else {
		if len(run.Targets) != len(cp.combined.Targets) {
			return fmt.Errorf("census: round %d has %d targets, campaign has %d",
				run.Round, len(run.Targets), len(cp.combined.Targets))
		}
		for ti, tgt := range run.Targets {
			if tgt != cp.combined.Targets[ti] {
				return fmt.Errorf("census: round %d target list diverges at index %d (%v vs %v)",
					run.Round, ti, tgt, cp.combined.Targets[ti])
			}
		}
	}
	c := cp.combined
	c.Rounds++
	if cp.dirty == nil {
		cp.dirty = make([]uint32, (len(c.Targets)+31)/32)
	}

	// Register the round's vantage points serially: new VPs extend the
	// union in first-seen order (matching the batch Combine ordering),
	// existing ones map to their slot.
	slots := make([]int, len(run.VPs))
	fresh := make([]bool, len(run.VPs))
	for vi, vp := range run.VPs {
		si, ok := cp.byID[vp.ID]
		if !ok {
			si = len(c.VPs)
			cp.byID[vp.ID] = si
			c.VPs = append(c.VPs, vp)
			c.RTTus = append(c.RTTus, nil)
			fresh[vi] = true
		}
		slots[vi] = si
	}

	// Fold the rows in column shards pulled from an atomic counter: every
	// combined cell is written by exactly one worker, so the result is
	// identical at any worker count or shard width. Fresh rows are copied
	// (the batch path copies the first-seen row, noSample cells included),
	// existing rows min-merge.
	nT := len(c.Targets)
	shard := cp.cfg.ShardTargets
	if shard <= 0 {
		shard = nT/(4*cp.cfg.foldWorkers()) + 1
	}
	shardsPerRow := (nT + shard - 1) / shard
	if shardsPerRow == 0 {
		shardsPerRow = 1 // zero-target campaigns still register VPs
	}
	// Allocation happens once, outside the sharded loop: fresh rows are
	// carved together from the slab arena (or individually on the heap
	// under cfg.HeapRows) and overwritten whole by the copy below.
	if nFresh := countFresh(fresh); nFresh > 0 {
		rows := cp.newRows(nFresh, nT)
		ri := 0
		for vi := range run.VPs {
			if fresh[vi] {
				c.RTTus[slots[vi]] = rows[ri]
				ri++
			}
		}
	}
	total := len(run.VPs) * shardsPerRow
	workers := cp.cfg.foldWorkers()
	if workers > total {
		workers = total
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				unit := int(next.Add(1) - 1)
				if unit >= total {
					return
				}
				vi := unit / shardsPerRow
				lo := (unit % shardsPerRow) * shard
				hi := lo + shard
				if hi > nT {
					hi = nT
				}
				src := run.RTTus[vi][lo:hi]
				dst := c.RTTus[slots[vi]][lo:hi]
				// Dirty bits accumulate in a local word and flush on
				// word-boundary crossings: shard edges can split a word
				// between workers, so the flush merges with CAS.
				word, mask := lo>>5, uint32(0)
				if fresh[vi] {
					// A fresh row copies whole (noSample cells included,
					// matching batch Combine); every sampled cell is a VP
					// newly answering its target.
					copy(dst, src)
					for t, v := range src {
						if v < 0 {
							continue
						}
						gt := lo + t
						if w := gt >> 5; w != word {
							cp.orDirty(word, mask)
							word, mask = w, 0
						}
						mask |= 1 << uint(gt&31)
					}
					cp.orDirty(word, mask)
					continue
				}
				for t, v := range src {
					if v < 0 {
						continue
					}
					if dst[t] < 0 || v < dst[t] {
						dst[t] = v
						gt := lo + t
						if w := gt >> 5; w != word {
							cp.orDirty(word, mask)
							word, mask = w, 0
						}
						mask |= 1 << uint(gt&31)
					}
				}
				cp.orDirty(word, mask)
			}
		}()
	}
	wg.Wait()

	cp.grey.Merge(run.Greylist)
	cp.health.Add(run.Health)
	cp.cfg.Metrics.foldObserved(time.Since(foldStart), cp.grey.Len())
	if cp.cfg.RetainRuns {
		cp.runs = append(cp.runs, run)
	}
	if cp.cfg.OnRun != nil {
		if err := cp.cfg.OnRun(run); err != nil {
			return fmt.Errorf("census: campaign round %d hook: %w", run.Round, err)
		}
	}
	return nil
}

// newRows returns n fresh zero-valued combined rows, slab-carved unless
// the campaign is configured for per-row heap allocation.
func (cp *Campaign) newRows(n, rowLen int) [][]int32 {
	if cp.cfg.HeapRows {
		rows := make([][]int32, n)
		for i := range rows {
			rows[i] = make([]int32, rowLen)
		}
		return rows
	}
	if cp.arena == nil || cp.arena.rowLen != rowLen {
		cp.arena = newSlabArena(rowLen)
	}
	return cp.arena.alloc(n)
}

func countFresh(fresh []bool) int {
	n := 0
	for _, f := range fresh {
		if f {
			n++
		}
	}
	return n
}

// orDirty merges a local dirty mask into the shared bitmap word.
func (cp *Campaign) orDirty(word int, mask uint32) {
	if mask == 0 {
		return
	}
	p := &cp.dirty[word]
	for {
		old := atomic.LoadUint32(p)
		if old&mask == mask || atomic.CompareAndSwapUint32(p, old, old|mask) {
			return
		}
	}
}

// TakeDirty returns the sorted indices of every target whose combined
// row changed (a min-RTT cell improved, or a VP newly answered) since
// the previous TakeDirty, clearing the set. It must not run concurrently
// with FoldRun.
func (cp *Campaign) TakeDirty() []int {
	var out []int
	for w, v := range cp.dirty {
		if v == 0 {
			continue
		}
		cp.dirty[w] = 0
		base := w * 32
		for ; v != 0; v &= v - 1 {
			out = append(out, base+bits.TrailingZeros32(v))
		}
	}
	return out
}

// AttachAnalyzer binds an incremental analyzer to the campaign: folds
// keep marking dirty targets, and AnalyzeDirty refreshes exactly those.
func (cp *Campaign) AttachAnalyzer(a *Analyzer) { cp.analyzer = a }

// Analyzer returns the attached incremental analyzer, or nil.
func (cp *Campaign) Analyzer() *Analyzer { return cp.analyzer }

// AnalyzeDirty re-analyzes the targets dirtied since the last call
// through the attached analyzer and returns the dirty-set size. The
// outcomes afterwards match a batch AnalyzeAll over the current combined
// matrix bit for bit (TestCensusDeterminism). It must not run
// concurrently with FoldRun — the analysis reads the live matrix;
// ExecuteRoundsOverlapped sequences the two while overlapping the
// analysis with the next round's probing.
func (cp *Campaign) AnalyzeDirty() int {
	t0 := time.Now()
	dirty := cp.TakeDirty()
	before := cp.analyzer.Stats()
	cp.analyzer.Update(cp.combined, dirty)
	d := time.Since(t0)
	cp.analysisWall.Add(int64(d))
	cp.cfg.Metrics.analyzeObserved(d, len(dirty), before, cp.analyzer.Stats())
	return len(dirty)
}

// Outcomes returns the attached analyzer's current outcomes — the
// anycast targets of everything folded and analyzed so far, in target
// order.
func (cp *Campaign) Outcomes() []Outcome { return cp.analyzer.Outcomes() }

// AnalysisWall returns the cumulative wall time spent in AnalyzeDirty.
func (cp *Campaign) AnalysisWall() time.Duration {
	return time.Duration(cp.analysisWall.Load())
}

// ExecuteRoundsOverlapped probes rounds first .. first+rounds-1, folding
// each finished round and analyzing its dirty set while the next round
// probes. In-flight analysis is bounded to one (a one-slot completion
// channel): round N+1's fold waits for round N's analysis, so a fold
// never mutates cells an analysis is reading. vpsFor selects each
// round's vantage points; onRound, when set, observes each round's
// summary and probing error right after its fold. Requires an attached
// analyzer. The last round's dirty set is analyzed before returning, so
// Outcomes reflects the whole campaign. Per-VP probing errors degrade
// rather than abort (as ExecuteRound) and come back joined.
func (cp *Campaign) ExecuteRoundsOverlapped(ctx context.Context, w *netsim.World, h *hitlist.Hitlist, blacklist *prober.Greylist, first uint64, rounds int, vpsFor func(round uint64) []platform.VP, onRound func(RoundSummary, error)) error {
	if cp.analyzer == nil {
		return fmt.Errorf("census: overlapped campaign requires an attached analyzer")
	}
	var errs []error
	var pending chan struct{}
	wait := func() {
		if pending != nil {
			<-pending
			pending = nil
		}
	}
	for r := 0; r < rounds; r++ {
		round := first + uint64(r)
		t0 := time.Now()
		run, err := ExecuteContext(ctx, w, vpsFor(round), h, blacklist, round, cp.cfg.Census)
		wait() // round N-1's analysis still owns the combined matrix
		if ctx.Err() != nil {
			if err != nil {
				errs = append(errs, err)
			}
			break
		}
		sum := RoundSummary{
			Round:       round,
			VPs:         len(run.VPs),
			Probes:      run.TotalProbes(),
			EchoTargets: run.EchoTargets(),
			GreylistLen: run.Greylist.Len(),
			Health:      run.Health,
		}
		if ferr := cp.FoldRun(run); ferr != nil {
			errs = append(errs, ferr)
			break
		}
		sum.Duration = time.Since(t0)
		pending = make(chan struct{})
		go func(done chan struct{}) {
			defer close(done)
			cp.AnalyzeDirty()
		}(pending)
		if onRound != nil {
			onRound(sum, err)
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	wait()
	return errors.Join(errs...)
}

// ExecuteRound probes one census round and folds it into the campaign,
// returning the round's summary. Per-VP probing errors degrade rather than
// abort (quarantined VPs keep their partial rows, exactly as
// ExecuteContext); the round still folds, and the error is returned for
// surfacing. Unless RetainRuns is set the round's matrix is unreferenced
// when ExecuteRound returns.
func (cp *Campaign) ExecuteRound(ctx context.Context, w *netsim.World, vps []platform.VP, h *hitlist.Hitlist, blacklist *prober.Greylist, round uint64) (RoundSummary, error) {
	t0 := time.Now()
	run, err := ExecuteContext(ctx, w, vps, h, blacklist, round, cp.cfg.Census)
	if ctx.Err() != nil {
		return RoundSummary{Round: round}, err
	}
	sum := RoundSummary{
		Round:       round,
		VPs:         len(run.VPs),
		Probes:      run.TotalProbes(),
		EchoTargets: run.EchoTargets(),
		GreylistLen: run.Greylist.Len(),
		Health:      run.Health,
	}
	if ferr := cp.FoldRun(run); ferr != nil {
		return sum, ferr
	}
	sum.Duration = time.Since(t0)
	return sum, err
}

// Combined returns the minimum-RTT combination of every round folded so
// far, or nil before the first fold. The matrix is live: folding further
// rounds keeps updating it.
func (cp *Campaign) Combined() *Combined { return cp.combined }

// Greylist returns the union of every folded round's greylist.
func (cp *Campaign) Greylist() *prober.Greylist { return cp.grey }

// Health returns the campaign health aggregated over the folded rounds.
func (cp *Campaign) Health() CampaignHealth { return cp.health }

// Runs returns the retained rounds (RetainRuns only; nil otherwise).
func (cp *Campaign) Runs() []*Run { return cp.runs }

// StreamCombine is the one-shot form of the streaming fold: source is
// called with 0..rounds-1 and each returned run is folded and released.
// It is the memory-bounded equivalent of Combine(source(0..rounds-1)...).
func StreamCombine(cfg CampaignConfig, rounds int, source func(i int) (*Run, error)) (*Combined, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("census: nothing to combine")
	}
	cp := NewCampaign(cfg)
	for i := 0; i < rounds; i++ {
		run, err := source(i)
		if err != nil {
			return nil, err
		}
		if err := cp.FoldRun(run); err != nil {
			return nil, err
		}
	}
	return cp.Combined(), nil
}
