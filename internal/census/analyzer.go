package census

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
)

// This file is the incremental analysis engine. The paper re-analyzes
// every responsive /24 per monthly census (Sec. 3, Fig. 4) yet finds the
// anycast set largely stable month to month (Sec. 3.2) — so re-running
// the full O(targets × VPs²) detection from scratch after every round
// mostly re-derives last round's answers. An Analyzer instead keeps, per
// target, the last result and the detection certificate that decided it
// (internal/core/certificate.go): after a round folds, only the targets
// whose combined min-RTT row changed (the campaign's dirty set) are
// re-analyzed, and for those the cached certificate is revalidated in
// O(n) before any sorting pairwise scan runs. Outcomes are bit-identical
// to batch AnalyzeAll at every round — TestCensusDeterminism pins it.

// AnalyzerConfig tunes an incremental Analyzer.
type AnalyzerConfig struct {
	// Options tunes the per-target core analysis.
	Options core.Options
	// MinSamples is the vantage-point coverage below which a target is
	// not analyzed; values below 2 mean 2 (matching AnalyzeAll).
	MinSamples int
	// Workers bounds the analysis goroutines; zero means GOMAXPROCS.
	Workers int
}

func (c AnalyzerConfig) minSamples() int {
	if c.MinSamples < 2 {
		return 2
	}
	return c.MinSamples
}

func (c AnalyzerConfig) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// certEntry caches one target's detection certificate addressed by
// vantage-point slot (row index in Combined.VPs), not measurement
// position: a VP newly answering a target inserts a measurement
// mid-sequence, shifting positions, while slots are stable for the life
// of a campaign.
type certEntry struct {
	kind core.CertKind
	a, b int32
}

// AnalyzerStats counts what the incremental engine did, for surfacing in
// heap reports and benchmark blocks.
type AnalyzerStats struct {
	// Updates is the number of Update calls (analysis rounds).
	Updates int
	// Analyzed is the total number of target analyses across all updates.
	Analyzed int64
	// CertHits counts analyses decided by revalidating the cached
	// certificate, skipping the full detection pass.
	CertHits int64
	// FullScans counts analyses that paid the full detection pass (no
	// cached certificate, or revalidation was inconclusive).
	FullScans int64
	// LastDirty is the dirty-set size of the most recent update.
	LastDirty int
}

// CertHitRate is the fraction of analyses decided by a cached
// certificate.
func (s AnalyzerStats) CertHitRate() float64 {
	if s.Analyzed == 0 {
		return 0
	}
	return float64(s.CertHits) / float64(s.Analyzed)
}

// Analyzer re-analyzes a streaming campaign's combined matrix
// incrementally: Update(c, dirty) refreshes only the dirty targets,
// reusing the spatial city index, the VP-pair distance matrix, cached
// per-target results and detection certificates across rounds. The zero
// value is not usable; construct with NewAnalyzer. An Analyzer is not
// safe for concurrent Update calls.
//
// The contract with the caller: across Update calls the Combined must
// keep the same target list, vantage points may only be appended, and
// every target whose measurement set changed in any way must appear in
// dirty. Campaign.AnalyzeDirty maintains exactly this.
type Analyzer struct {
	db  *cities.DB
	cfg AnalyzerConfig

	idx    *cities.Index
	c      *Combined
	vpDist []float64
	nVP    int

	results []*core.Result
	certs   []certEntry

	stats AnalyzerStats
}

// NewAnalyzer returns an empty incremental analyzer over the city
// database.
func NewAnalyzer(db *cities.DB, cfg AnalyzerConfig) *Analyzer {
	return &Analyzer{db: db, cfg: cfg}
}

// Stats returns the cumulative engine counters.
func (a *Analyzer) Stats() AnalyzerStats { return a.stats }

// Update re-analyzes the dirty targets (unique indices into c.Targets)
// against the current combined matrix. The first call must list every
// target that has samples (a campaign's first fold dirties exactly
// those); an empty or nil dirty set re-analyzes nothing.
func (a *Analyzer) Update(c *Combined, dirty []int) {
	a.bind(c)
	a.run(dirty, false, true)
	a.stats.Updates++
	a.stats.LastDirty = len(dirty)
}

// Outcomes returns the current analysis outcome of every anycast target,
// in target order — exactly what AnalyzeAll over the same combined
// matrix returns.
func (a *Analyzer) Outcomes() []Outcome {
	var out []Outcome
	for t, r := range a.results {
		if r != nil {
			out = append(out, Outcome{Target: a.c.Targets[t], Result: *r})
		}
	}
	return out
}

// bind points the analyzer at the (possibly grown) combined matrix,
// extending the per-target state and the VP distance matrix as needed.
func (a *Analyzer) bind(c *Combined) {
	a.c = c
	if a.idx == nil {
		// One spatial index shared by every worker and every round:
		// classification is the inner loop of the analysis.
		a.idx = cities.NewIndex(a.db, 10)
	}
	if len(c.Targets) > len(a.results) {
		results := make([]*core.Result, len(c.Targets))
		copy(results, a.results)
		a.results = results
		certs := make([]certEntry, len(c.Targets))
		copy(certs, a.certs)
		a.certs = certs
	}
	if nVP := len(c.VPs); nVP != a.nVP {
		// Every disk the detector sees is centered at a vantage point, so
		// one VP-pair distance matrix replaces the per-target haversines
		// that dominate detection. The matrix is row-major with stride
		// nVP, so VP growth recomputes it whole — ~90k haversines for
		// ~300 VPs, amortized over every round and target.
		a.nVP = nVP
		a.vpDist = make([]float64, nVP*nVP)
		for i := 0; i < nVP; i++ {
			for j := i + 1; j < nVP; j++ {
				d := geo.DistanceKm(c.VPs[i].Loc, c.VPs[j].Loc)
				a.vpDist[i*nVP+j], a.vpDist[j*nVP+i] = d, d
			}
		}
	}
}

// run analyzes the listed targets (every target when all is set; list is
// then ignored) with a work-stealing worker pool: anycast targets cost
// orders of magnitude more than certified-unicast rejects, so workers
// pull small batches from a shared atomic cursor instead of owning
// static chunks — except at one effective worker, where stealing cannot
// balance anything and the range runs as a single static chunk. useCerts
// wires the certificate cache; AnalyzeAll's one-shot path disables it.
func (a *Analyzer) run(list []int, all, useCerts bool) {
	n := len(list)
	if all {
		list, n = nil, len(a.c.Targets)
	}
	if n == 0 {
		return
	}
	workers := a.cfg.workers()
	if workers > n {
		workers = n
	}
	// Batches big enough to keep cursor traffic negligible, small enough
	// that a straggler batch holds at most ~1/64 of one worker's share.
	grain := n / (workers * 64)
	if grain < 1 {
		grain = 1
	} else if grain > 128 {
		grain = 128
	}
	// With one effective worker there is nothing to steal: the shared
	// cursor would pay an atomic RMW per batch for no balancing at all
	// (BENCH_8 measured the work-stealing path at 0.979x the static
	// baseline on a single CPU). One static chunk covers the range.
	var cursor atomic.Int64
	next := func() int { return int(cursor.Add(int64(grain))) - grain }
	if workers == 1 {
		grain = n
		served := false
		next = func() int {
			if served {
				return n
			}
			served = true
			return 0
		}
	}
	var analyzed, hits, scans atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var nAnalyzed, nHits, nScans int64
			ms := make([]core.Measurement, 0, a.nVP)
			vpIdx := make([]int, 0, a.nVP)
			disks := make([]geo.Disk, 0, a.nVP)
			// dist closes over vpIdx (reassigned per target):
			// measurement i maps to vantage point vpIdx[i].
			nVP := a.nVP
			dist := core.CenterDist(func(i, j int) float64 {
				return a.vpDist[vpIdx[i]*nVP+vpIdx[j]]
			})
			for {
				lo := next()
				if lo >= n {
					break
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for k := lo; k < hi; k++ {
					t := k
					if list != nil {
						t = list[k]
					}
					ms, vpIdx = a.c.AppendMeasurements(t, ms[:0], vpIdx[:0])
					if len(ms) < a.cfg.minSamples() {
						a.results[t] = nil
						a.certs[t] = certEntry{}
						continue
					}
					nAnalyzed++
					disks = core.AppendDisks(disks[:0], ms)
					var cert core.Certificate
					anycast, decided := false, false
					if useCerts {
						if pc, ok := a.certToPositions(a.certs[t], vpIdx); ok {
							if v, conclusive := pc.Revalidate(disks, dist); conclusive {
								anycast, decided, cert = v, true, pc
								nHits++
							}
						}
					}
					if !decided {
						cert = core.DetectCert(disks, dist)
						anycast = cert.Anycast()
						nScans++
					}
					if anycast {
						r := core.AnalyzeDetected(a.idx, ms, disks, dist, a.cfg.Options)
						a.results[t] = &r
					} else {
						a.results[t] = nil
					}
					if useCerts {
						a.certs[t] = certToSlots(cert, vpIdx)
					}
				}
			}
			analyzed.Add(nAnalyzed)
			hits.Add(nHits)
			scans.Add(nScans)
		}()
	}
	wg.Wait()
	a.stats.Analyzed += analyzed.Load()
	a.stats.CertHits += hits.Load()
	a.stats.FullScans += scans.Load()
}

// certToSlots rewrites a certificate's measurement positions as VP slots.
func certToSlots(c core.Certificate, vpIdx []int) certEntry {
	e := certEntry{kind: c.Kind}
	switch c.Kind {
	case core.CertUnicast:
		e.a = int32(vpIdx[c.I])
	case core.CertAnycast:
		e.a, e.b = int32(vpIdx[c.I]), int32(vpIdx[c.J])
	}
	return e
}

// certToPositions maps a slot-addressed certificate back to positions in
// the target's current measurement sequence. vpIdx is ascending (rows are
// appended in slot order), so each slot binary-searches. ok is false when
// there is no cached certificate or a referenced VP is absent from the
// sequence (it cannot be: cells never disappear under min-combine — but a
// miss must degrade to a full scan, not a wrong answer).
func (a *Analyzer) certToPositions(e certEntry, vpIdx []int) (core.Certificate, bool) {
	switch e.kind {
	case core.CertUnicast:
		i, ok := slotPos(vpIdx, int(e.a))
		return core.Certificate{Kind: e.kind, I: i}, ok
	case core.CertAnycast:
		i, ok1 := slotPos(vpIdx, int(e.a))
		j, ok2 := slotPos(vpIdx, int(e.b))
		return core.Certificate{Kind: e.kind, I: i, J: j}, ok1 && ok2
	}
	return core.Certificate{}, false
}

func slotPos(vpIdx []int, slot int) (int, bool) {
	i := sort.SearchInts(vpIdx, slot)
	return i, i < len(vpIdx) && vpIdx[i] == slot
}
