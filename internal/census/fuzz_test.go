package census

import (
	"bytes"
	"testing"
	"time"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// fuzzSeedRun fabricates a tiny but fully-populated run for fuzz seeds:
// both formats of it are valid inputs, and mutations of them reach deep
// into the decoders.
func fuzzSeedRun() *Run {
	grey := prober.FromSnapshot(map[netsim.IP]netsim.ReplyKind{
		0x01020304: netsim.ReplyAdminFiltered,
		0x01020310: netsim.ReplyHostProhibited,
	})
	vps := []platform.VP{
		{ID: 1, Name: "vp-a", LoadFactor: 1},
		{ID: 2, Name: "vp-b", LoadFactor: 1.5},
	}
	return &Run{
		Round:   3,
		VPs:     vps,
		Targets: []netsim.IP{0x0A000001, 0x0A000101, 0x0A000201},
		RTTus: [][]int32{
			{1500, -1, 1 << 30},
			{-1, 0, 42},
		},
		Stats: []prober.Stats{
			{VP: vps[0], Sent: 3, Echo: 2, Completion: 3 * time.Millisecond},
			{VP: vps[1], Sent: 3, Echo: 2, Completion: 4 * time.Millisecond},
		},
		Greylist: grey,
		Health:   RunHealth{Round: 3, VPs: 2, Completed: 2},
	}
}

// FuzzLoadRun feeds arbitrary bytes to the run decoder — which dispatches
// on the magic to both the v2 columnar and the legacy gob+flate paths —
// mirroring internal/record's codec fuzzing: it must never panic, and
// everything it accepts must round-trip through SaveRun byte-identically.
func FuzzLoadRun(f *testing.F) {
	run := fuzzSeedRun()
	var v2, legacy bytes.Buffer
	if err := SaveRun(&v2, run); err != nil {
		f.Fatal(err)
	}
	if err := SaveRunLegacy(&legacy, run); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(legacy.Bytes())
	f.Add([]byte{})
	f.Add([]byte(runMagicV2))
	f.Add(append([]byte(runMagicV2), 0))
	f.Add([]byte("ACMR9\nwrong magic"))
	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Add(legacy.Bytes()[:legacy.Len()/2])
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadRun(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted runs must be internally consistent and re-save
		// deterministically: v2 re-encodes of a decoded run are pure
		// functions of its contents.
		if len(got.RTTus) != len(got.VPs) {
			t.Fatalf("accepted run has %d rows for %d VPs", len(got.RTTus), len(got.VPs))
		}
		for _, row := range got.RTTus {
			if len(row) != len(got.Targets) {
				t.Fatalf("accepted run has a %d-cell row for %d targets", len(row), len(got.Targets))
			}
		}
		var a, b bytes.Buffer
		if err := SaveRun(&a, got); err != nil {
			t.Fatalf("re-save of accepted run failed: %v", err)
		}
		got2, err := LoadRun(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("re-load of re-saved run failed: %v", err)
		}
		if err := SaveRun(&b, got2); err != nil {
			t.Fatalf("second re-save failed: %v", err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("accepted run does not re-save byte-identically")
		}
	})
}

// fuzzSeedShard fabricates a small shard frame — the streaming unit the
// cluster coordinator decodes straight off the network, so the decoder
// is fuzzed with the same never-panic contract as the archive path.
func fuzzSeedShard() *ShardRows {
	run := fuzzSeedRun()
	return &ShardRows{
		Round:    run.Round,
		Lo:       1,
		Hi:       3,
		Slots:    []int{0, 5},
		RTTus:    [][]int32{{-1, 1 << 30}, {0, 42}},
		Stats:    []ShardStats{ShardStatsOf(run.Stats[0]), ShardStatsOf(run.Stats[1])},
		Greylist: run.Greylist,
	}
}

// FuzzDecodeShardRows covers the streaming frame header introduced for
// the distributed census: arbitrary bytes must never panic the decoder,
// and every accepted frame must re-encode byte-identically.
func FuzzDecodeShardRows(f *testing.F) {
	enc, err := fuzzSeedShard().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{})
	f.Add([]byte(ShardFrameMagic))
	f.Add(append([]byte(ShardFrameMagic), 0))
	f.Add(append([]byte(ShardFrameMagic), 0xFF))
	f.Add([]byte("ACMS9\nwrong magic"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeShardRows(data)
		if err != nil {
			return
		}
		if len(got.RTTus) != len(got.Slots) || len(got.Stats) != len(got.Slots) {
			t.Fatalf("accepted frame has %d rows / %d stats for %d slots",
				len(got.RTTus), len(got.Stats), len(got.Slots))
		}
		width := got.Hi - got.Lo
		for _, row := range got.RTTus {
			if len(row) != width {
				t.Fatalf("accepted frame has a %d-cell row for width %d", len(row), width)
			}
		}
		re, err := got.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		got2, err := DecodeShardRows(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2, err := got2.Encode()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("accepted frame does not re-encode byte-identically")
		}
	})
}
