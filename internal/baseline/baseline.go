// Package baseline implements the prior-art techniques the paper positions
// itself against (Sec. 2.2), so the comparison can be reproduced rather
// than asserted:
//
//   - CHAOS enumeration (Fan et al., paper [25]): hostname.bind TXT/CH
//     queries enumerate DNS server instances by their disclosed identifiers.
//     High recall on DNS deployments, no geolocation, inapplicable beyond
//     DNS.
//   - Speed-of-light detection (Madory et al., paper [35]): the pairwise
//     disk-disjointness test alone - detection without enumeration or
//     geolocation.
//   - Geolocation databases (paper [41]): one location per IP address,
//     structurally wrong for anycast.
//   - Constraint-based geolocation / latency triangulation (paper [28]):
//     multilateration assumes a single target location and fails when the
//     latency disks have empty intersection - exactly the anycast case.
package baseline

import (
	"fmt"

	"anycastmap/internal/asdb"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/wire"
)

// CHAOSResult is the outcome of a CHAOS enumeration campaign against one
// target.
type CHAOSResult struct {
	// Answered reports whether any vantage point got a CHAOS answer
	// (false for every non-DNS deployment: the baseline's blind spot).
	Answered bool
	// ServerIDs is the set of distinct hostname.bind identifiers seen.
	ServerIDs map[string]bool
}

// Count returns the number of enumerated instances.
func (r CHAOSResult) Count() int { return len(r.ServerIDs) }

// CHAOSEnumerate runs hostname.bind TXT/CH queries from every vantage
// point across the given census rounds, going through the real DNS wire
// codec both ways.
func CHAOSEnumerate(w *netsim.World, vps []platform.VP, target netsim.IP, rounds int) (CHAOSResult, error) {
	res := CHAOSResult{ServerIDs: map[string]bool{}}
	var id uint16
	for _, vp := range vps {
		for round := 1; round <= rounds; round++ {
			id++
			// Serialize the query exactly as dig would.
			if _, err := wire.BuildCHAOSQuery(id); err != nil {
				return CHAOSResult{}, fmt.Errorf("baseline: %w", err)
			}
			serverID, reply := w.QueryCHAOS(vp, target, uint64(round))
			if !reply.OK() {
				continue
			}
			// The server identity travels back as a TXT record.
			respBytes, err := wire.BuildCHAOSResponse(id, serverID)
			if err != nil {
				return CHAOSResult{}, fmt.Errorf("baseline: %w", err)
			}
			resp, err := wire.ParseDNS(respBytes)
			if err != nil {
				return CHAOSResult{}, fmt.Errorf("baseline: %w", err)
			}
			if len(resp.Answers) != 1 || resp.Answers[0].TXT == "" {
				continue
			}
			res.Answered = true
			res.ServerIDs[resp.Answers[0].TXT] = true
		}
	}
	return res, nil
}

// SOLDetect is the detection-only speed-of-light baseline: true iff some
// pair of measurement disks is disjoint. It is deliberately the naive
// O(n²) formulation, serving as the reference the optimized core.Detect is
// tested against.
func SOLDetect(ms []core.Measurement) bool {
	disks := make([]geo.Disk, len(ms))
	for i, m := range ms {
		disks[i] = m.Disk()
	}
	for i := 0; i < len(disks); i++ {
		for j := i + 1; j < len(disks); j++ {
			if !disks[i].Overlaps(disks[j]) {
				return true
			}
		}
	}
	return false
}

// GeoDB is a geolocation-database stand-in: like the commercial databases
// the paper calls unreliable (ref [41]), it stores exactly one location per
// prefix - typically the operator's home region - regardless of how many
// places announce it.
type GeoDB struct {
	byPrefix map[netsim.Prefix24]cities.City
}

// BuildGeoDB derives the database from registry and world metadata the way
// real databases do (WHOIS country, operator headquarters): every prefix of
// an AS maps to the largest city of the AS's registered country.
func BuildGeoDB(w *netsim.World, reg *asdb.Registry, db *cities.DB) *GeoDB {
	g := &GeoDB{byPrefix: map[netsim.Prefix24]cities.City{}}
	for _, as := range reg.All() {
		home, ok := homeCity(db, as.CC)
		if !ok {
			continue
		}
		for _, d := range w.DeploymentsByASN(as.ASN) {
			g.byPrefix[d.Prefix] = home
		}
	}
	return g
}

// homeCity picks the most populated city of a country.
func homeCity(db *cities.DB, cc string) (cities.City, bool) {
	for _, c := range db.All() {
		if c.CC == cc {
			return c, true
		}
	}
	return cities.City{}, false
}

// Lookup returns the database's single answer for a prefix.
func (g *GeoDB) Lookup(p netsim.Prefix24) (cities.City, bool) {
	c, ok := g.byPrefix[p]
	return c, ok
}

// CBGResult is the outcome of constraint-based multilateration.
type CBGResult struct {
	// Feasible reports whether the latency disks admit a common point -
	// the single-location assumption of triangulation.
	Feasible bool
	// Loc is the estimated location when feasible.
	Loc geo.Coord
	// ViolationKm is the residual infeasibility: how far the best point
	// still is outside the tightest violated disk. Positive values mean
	// the single-location model is broken (anycast).
	ViolationKm float64
}

// CBGLocate runs constraint-based geolocation (latency multilateration):
// it searches for a point inside every measurement disk. Unicast targets
// yield a feasible point near the true host; anycast targets violate the
// single-location assumption and come back infeasible.
func CBGLocate(ms []core.Measurement) CBGResult {
	if len(ms) == 0 {
		return CBGResult{}
	}
	disks := make([]geo.Disk, len(ms))
	smallest := 0
	for i, m := range ms {
		disks[i] = m.Disk()
		if disks[i].RadiusKm < disks[smallest].RadiusKm {
			smallest = i
		}
	}
	// Start at the center of the tightest constraint and descend the max
	// violation by repeatedly stepping toward the most violated disk.
	p := disks[smallest].Center
	step := disks[smallest].RadiusKm
	if step < 50 {
		step = 50
	}
	for iter := 0; iter < 120; iter++ {
		worst, worstViol := -1, 0.0
		for i := range disks {
			viol := geo.DistanceKm(p, disks[i].Center) - disks[i].RadiusKm
			if viol > worstViol {
				worst, worstViol = i, viol
			}
		}
		if worst < 0 {
			return CBGResult{Feasible: true, Loc: p}
		}
		// Move toward the violated disk's center by the lesser of the
		// violation and the current step.
		move := worstViol
		if move > step {
			move = step
		}
		p = geo.Interpolate(p, disks[worst].Center, move/geo.DistanceKm(p, disks[worst].Center))
		step *= 0.95
	}
	// Final violation check.
	maxViol := 0.0
	for i := range disks {
		if v := geo.DistanceKm(p, disks[i].Center) - disks[i].RadiusKm; v > maxViol {
			maxViol = v
		}
	}
	return CBGResult{Feasible: maxViol <= 1, Loc: p, ViolationKm: maxViol}
}
