package baseline

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

var (
	once sync.Once
	w    *netsim.World
	pl   *platform.Platform
	db   *cities.DB
)

func testbed(t *testing.T) (*netsim.World, *platform.Platform) {
	t.Helper()
	once.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 2000
		w = netsim.New(cfg)
		pl = platform.PlanetLab(cities.Default())
		db = cities.Default()
	})
	return w, pl
}

func measure(w *netsim.World, vps []platform.VP, target netsim.IP, rounds int) []core.Measurement {
	var ms []core.Measurement
	for _, vp := range vps {
		best := time.Duration(-1)
		for r := 1; r <= rounds; r++ {
			if reply := w.ProbeICMP(vp, target, uint64(r)); reply.OK() {
				if best < 0 || reply.RTT < best {
					best = reply.RTT
				}
			}
		}
		if best >= 0 {
			ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
		}
	}
	return ms
}

func repOf(t *testing.T, name string) netsim.IP {
	t.Helper()
	as := w.Registry.MustByName(name)
	ip, _ := w.Representative(w.DeploymentsByASN(as.ASN)[0].Prefix)
	return ip
}

func unicastTarget(t *testing.T) netsim.IP {
	t.Helper()
	var out netsim.IP
	w.Prefixes(func(p netsim.Prefix24) {
		if out != 0 || w.IsAnycast(p) {
			return
		}
		ip, alive := w.Representative(p)
		if alive && w.ProbeICMP(pl.VPs()[0], ip, 1).OK() {
			out = ip
		}
	})
	if out == 0 {
		t.Fatal("no responsive unicast target")
	}
	return out
}

func TestCHAOSEnumeratesDNS(t *testing.T) {
	w, pl := testbed(t)
	target := repOf(t, "L-ROOT,US")
	res, err := CHAOSEnumerate(w, pl.VPs(), target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered {
		t.Fatal("L-root did not answer CHAOS")
	}
	as := w.Registry.MustByName("L-ROOT,US")
	truth := len(w.DeploymentsByASN(as.ASN)[0].Replicas)
	// CHAOS reads the identity off the server: with catchment flap over
	// rounds it approaches the full deployment - at least as good as, and
	// usually better than, latency-based enumeration (the paper's point
	// about [25] reaching ~90% recall on DNS).
	if res.Count() < truth*3/4 {
		t.Errorf("CHAOS found %d of %d instances", res.Count(), truth)
	}
	if res.Count() > truth {
		t.Errorf("CHAOS found %d instances of a %d-replica deployment", res.Count(), truth)
	}
	igreedy := core.Analyze(db, measure(w, pl.VPs(), target, 3), core.Options{})
	t.Logf("truth %d, CHAOS %d, iGreedy %d", truth, res.Count(), igreedy.Count())
}

func TestCHAOSBlindBeyondDNS(t *testing.T) {
	// The baseline's limitation: nothing to enumerate on a non-DNS
	// deployment, even though it is anycast.
	w, pl := testbed(t)
	target := repOf(t, "MICROSOFT,US")
	res, err := CHAOSEnumerate(w, pl.VPs()[:40], target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered || res.Count() != 0 {
		t.Errorf("CHAOS answered on Microsoft: %+v", res)
	}
	// ...while the latency technique handles it fine.
	if !core.Detect(measure(w, pl.VPs(), target, 2)) {
		t.Error("latency detection failed on the same deployment")
	}
}

func TestSOLDetectMatchesCore(t *testing.T) {
	// The naive baseline and the optimized implementation must agree.
	w, pl := testbed(t)
	r := rand.New(rand.NewSource(3))
	targets := []netsim.IP{repOf(t, "CLOUDFLARENET,US"), unicastTarget(t)}
	for i := 0; i < 30; i++ {
		n := 5 + r.Intn(60)
		ms := make([]core.Measurement, n)
		for j := range ms {
			ms[j] = core.Measurement{
				VPLoc: geo.Coord{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180},
				RTT:   time.Duration(1+r.Intn(120)) * time.Millisecond,
			}
		}
		if SOLDetect(ms) != core.Detect(ms) {
			t.Fatal("baseline and core detection disagree on a random instance")
		}
	}
	for _, target := range targets {
		ms := measure(w, pl.VPs(), target, 2)
		if SOLDetect(ms) != core.Detect(ms) {
			t.Fatalf("baseline and core detection disagree on %v", target)
		}
	}
}

func TestGeoDBSingleLocation(t *testing.T) {
	w, _ := testbed(t)
	g := BuildGeoDB(w, w.Registry, db)
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	deps := w.DeploymentsByASN(cf.ASN)
	first, ok := g.Lookup(deps[0].Prefix)
	if !ok {
		t.Fatal("database misses a CloudFlare prefix")
	}
	// The structural failure: one location for a deployment serving the
	// whole planet, and the same location for every prefix of the AS.
	if first.CC != "US" {
		t.Errorf("CloudFlare database location in %s, want its WHOIS country", first.CC)
	}
	for _, d := range deps[1:] {
		c, ok := g.Lookup(d.Prefix)
		if !ok || c.Key() != first.Key() {
			t.Fatal("database disagrees across prefixes of one AS")
		}
	}
	// Per-replica accuracy is necessarily terrible: at most one of the
	// deployment's cities can match.
	matches := 0
	for _, r := range deps[0].Replicas {
		if r.City.Key() == first.Key() {
			matches++
		}
	}
	if matches > 1 {
		t.Errorf("database matched %d replicas?!", matches)
	}
	if _, ok := g.Lookup(netsim.Prefix24(3)); ok {
		t.Error("database has an entry for an unallocated prefix")
	}
}

func TestCBGWorksOnUnicast(t *testing.T) {
	w, pl := testbed(t)
	target := unicastTarget(t)
	ms := measure(w, pl.VPs(), target, 3)
	if len(ms) < 10 {
		t.Fatalf("only %d samples", len(ms))
	}
	res := CBGLocate(ms)
	if !res.Feasible {
		t.Fatalf("CBG infeasible on unicast (violation %.0f km)", res.ViolationKm)
	}
	if !res.Loc.Valid() {
		t.Fatal("CBG returned an invalid location")
	}
	// The feasible point is a real constraint: inside every disk.
	for _, m := range ms {
		if !m.Disk().Contains(res.Loc) {
			t.Fatal("CBG point outside a constraint disk")
		}
	}
}

func TestCBGFailsOnAnycast(t *testing.T) {
	// The paper's Sec. 2.2 argument: triangulation assumes one location
	// and breaks on anycast.
	w, pl := testbed(t)
	target := repOf(t, "MICROSOFT,US")
	ms := measure(w, pl.VPs(), target, 3)
	res := CBGLocate(ms)
	if res.Feasible {
		t.Fatal("CBG found a single feasible location for a global anycast deployment")
	}
	if res.ViolationKm < 100 {
		t.Errorf("violation only %.0f km; should be grossly infeasible", res.ViolationKm)
	}
}

func TestCBGEmptyInput(t *testing.T) {
	if CBGLocate(nil).Feasible {
		t.Error("empty input should not be feasible")
	}
}
