// Package anycastmap's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (Table 1 and Figs. 4-16, plus the
// Sec. 3.1 coverage check and the Sec. 3.4 OpenDNS consistency check).
//
// All benchmarks share one lab - a fully executed four-census campaign
// against the synthetic Internet at the default 20,000-unicast-/24 scale -
// built once on first use. Each benchmark measures the cost of
// regenerating its experiment's data from the campaign; correctness of the
// values against the paper is asserted by the tests in
// internal/experiments.
//
// Run with:
//
//	go test -bench=. -benchmem
package anycastmap_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"anycastmap/internal/experiments"
	"anycastmap/internal/netsim"
	"anycastmap/internal/store"
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	l := experiments.DefaultLab()
	b.ResetTimer()
	return l
}

func BenchmarkTable1_RecordFormats(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Table1()
		if r.BinaryBytesPerVP >= r.TextBytesPerVP {
			b.Fatal("binary format not smaller than textual")
		}
	}
}

func BenchmarkFig4_CensusFunnel(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig4()
		if r.AnycastPrefixes == 0 {
			b.Fatal("no anycast detected")
		}
	}
}

func BenchmarkFig5_PlatformRecall(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig5()
		if r.RIPEReplicas <= r.PLReplicas {
			b.Fatalf("RIPE (%d) should out-resolve PlanetLab (%d)", r.RIPEReplicas, r.PLReplicas)
		}
	}
}

func BenchmarkFig6_ProtocolRecall(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig6()
		if len(r.Ratio) != 4 {
			b.Fatal("protocol matrix incomplete")
		}
	}
}

func BenchmarkFig7_Validation(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		rs := l.Fig7()
		if len(rs) != 2 {
			b.Fatal("want CloudFlare and EdgeCast validations")
		}
	}
}

func BenchmarkFig8_CompletionTime(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig8()
		if len(r.CDF) == 0 {
			b.Fatal("empty completion CDF")
		}
	}
}

func BenchmarkFig9_Top100(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig9()
		if len(r.Rows) == 0 {
			b.Fatal("no top ASes")
		}
	}
}

func BenchmarkFig10_AtAGlance(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig10()
		if r.All.IP24s == 0 || r.Min5.IP24s == 0 {
			b.Fatal("empty glance")
		}
	}
}

func BenchmarkFig11_CategoryBreakdown(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig11()
		if r.Share("DNS") == 0 {
			b.Fatal("no DNS share")
		}
	}
}

func BenchmarkFig12_ReplicaCDF(b *testing.B) {
	l := lab(b)
	// Fig12 re-analyzes every census individually: by far the most
	// expensive regeneration.
	for i := 0; i < b.N; i++ {
		r := l.Fig12()
		if r.CombinedCount == 0 {
			b.Fatal("no combined detections")
		}
	}
}

func BenchmarkFig13_SubnetsPerAS(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig13()
		if len(r.CDF) == 0 {
			b.Fatal("empty subnet CDF")
		}
	}
}

func BenchmarkFig14_Portscan(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig14()
		if r.Summary.UnionPorts == 0 {
			b.Fatal("no ports found")
		}
	}
}

func BenchmarkFig15_PortsCCDF(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig15()
		if len(r.CCDF) == 0 {
			b.Fatal("empty ports CCDF")
		}
	}
}

func BenchmarkFig16_Software(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Fig16()
		if len(r.Breakdown) == 0 {
			b.Fatal("no software found")
		}
	}
}

func BenchmarkCoverage_Sec31(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.Coverage()
		if r.Routed24s == 0 {
			b.Fatal("empty routing table")
		}
	}
}

func BenchmarkOpenDNS_Sec34(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.OpenDNS()
		if len(r.InstancesByProtocol) != 5 {
			b.Fatal("protocol set incomplete")
		}
	}
}

func BenchmarkAblationVPCount(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.AblateVPCount([]int{60, 200})
		if r.Detected24s[1] < r.Detected24s[0] {
			b.Fatal("VP-count ablation not monotone")
		}
	}
}

func BenchmarkAblationRate(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.AblateRate([]float64{1000, 12000})
		if r.EchoFraction[1] >= r.EchoFraction[0] {
			b.Fatal("rate ablation shows no loss")
		}
	}
}

func BenchmarkAblationIteration(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.AblateIteration()
		if r.IteratedReplicas < r.SingleShotReplicas {
			b.Fatal("iteration lost recall")
		}
	}
}

func BenchmarkAblationMIS(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		r := l.AblateMIS(25)
		if r.EqualCount == 0 {
			b.Fatal("greedy never optimal")
		}
	}
}

// BenchmarkFullCampaign measures the end-to-end cost of one complete
// census campaign (world build + blacklist + 4 censuses + combination +
// analysis) at a reduced scale, the headline "one census in under 5 hours"
// system result of the paper scaled to the simulator.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultLabConfig()
		cfg.Unicast24s = 4000
		cfg.Seed = uint64(3000 + i)
		l := experiments.NewLab(cfg)
		if len(l.Findings) == 0 {
			b.Fatal("campaign found nothing")
		}
	}
}

// --- anycastd serving path -------------------------------------------------
//
// The store benchmarks measure the hot path of cmd/anycastd: classifying
// IPs against the published census index. Cold is the O(log n) index walk
// (every probe misses the LRU), cached is the sharded-LRU hit path, batch
// is the bulk endpoint, and ConcurrentReadersDuringRefresh measures reader
// throughput while fresh snapshots hot-swap underneath.

var (
	benchStoreOnce sync.Once
	benchStore     *store.Store
	benchIPs       []netsim.IP // alternating anycast / unicast addresses
)

func benchServing(b *testing.B) (*store.Store, []netsim.IP) {
	b.Helper()
	l := experiments.DefaultLab()
	benchStoreOnce.Do(func() {
		benchStore = store.New(store.Options{CacheSize: 1 << 16})
		benchStore.Publish(store.NewSnapshot(l.Findings, l.World.Registry, 4, 4))
		for i, f := range l.Findings {
			benchIPs = append(benchIPs, f.Prefix.Host(byte(i)))
			// An address one /24 above is unicast with overwhelming
			// probability: the negative lookup path.
			benchIPs = append(benchIPs, (f.Prefix + 1).Host(byte(i)))
		}
	})
	b.ResetTimer()
	return benchStore, benchIPs
}

func reportLookupRate(b *testing.B, lookups int) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(lookups)/sec, "lookups/s")
	}
}

// BenchmarkStoreLookupCold measures the uncached index path: the snapshot
// binary search every LRU miss falls back to.
func BenchmarkStoreLookupCold(b *testing.B) {
	st, ips := benchServing(b)
	snap := st.Current()
	n := 0
	for i := 0; i < b.N; i++ {
		_, ok := snap.Lookup(ips[i%len(ips)])
		if i%2 == 0 && !ok {
			b.Fatal("anycast IP missed the index")
		}
		n++
	}
	reportLookupRate(b, n)
}

// BenchmarkStoreLookupCached hammers one hot IP: after the first miss,
// every lookup is an LRU hit.
func BenchmarkStoreLookupCached(b *testing.B) {
	st, ips := benchServing(b)
	hot := ips[0]
	for i := 0; i < b.N; i++ {
		if ans := st.Lookup(hot); !ans.Anycast {
			b.Fatal("hot anycast IP classified unicast")
		}
	}
	reportLookupRate(b, b.N)
}

// BenchmarkStoreLookupMixed cycles through more distinct IPs than fit the
// serving flow of real traffic: a blend of hits, misses and evictions.
func BenchmarkStoreLookupMixed(b *testing.B) {
	st, ips := benchServing(b)
	for i := 0; i < b.N; i++ {
		st.Lookup(ips[i%len(ips)])
	}
	reportLookupRate(b, b.N)
}

// BenchmarkStoreLookupBatch measures the bulk endpoint's per-IP cost with
// 1024-address batches.
func BenchmarkStoreLookupBatch(b *testing.B) {
	st, ips := benchServing(b)
	batch := make([]netsim.IP, 1024)
	for i := range batch {
		batch[i] = ips[i%len(ips)]
	}
	total := 0
	for i := 0; i < b.N; i++ {
		answers := st.LookupBatch(batch)
		if len(answers) != len(batch) {
			b.Fatal("short batch answer")
		}
		total += len(answers)
	}
	reportLookupRate(b, total)
}

// BenchmarkStoreConcurrentReadersDuringRefresh measures parallel reader
// throughput while a background goroutine keeps rebuilding and
// hot-swapping snapshots — the zero-downtime refresh claim as a number.
func BenchmarkStoreConcurrentReadersDuringRefresh(b *testing.B) {
	l := experiments.DefaultLab()
	st := store.New(store.Options{CacheSize: 1 << 16})
	st.Publish(store.NewSnapshot(l.Findings, l.World.Registry, 4, 4))
	var ips []netsim.IP
	for i, f := range l.Findings {
		ips = append(ips, f.Prefix.Host(byte(i)))
	}

	stop := make(chan struct{})
	var swaps atomic.Uint64
	var swapperWg sync.WaitGroup
	swapperWg.Add(1)
	go func() {
		defer swapperWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// A fresh snapshot each time: published snapshots are
				// immutable, so re-publishing one is not allowed.
				st.Publish(store.NewSnapshot(l.Findings, l.World.Registry, 4, 4))
				swaps.Add(1)
			}
		}
	}()

	b.ResetTimer()
	var n atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ans := st.Lookup(ips[i%len(ips)])
			if !ans.Anycast {
				b.Error("anycast IP classified unicast during refresh")
				return
			}
			i++
			n.Add(1)
		}
	})
	b.StopTimer()
	// Let the swapper land at least one snapshot before stopping so the
	// metric below is meaningful even on the tiny calibration runs.
	for swaps.Load() == 0 {
		runtime.Gosched()
	}
	close(stop)
	swapperWg.Wait()
	reportLookupRate(b, int(n.Load()))
	b.ReportMetric(float64(swaps.Load())/b.Elapsed().Seconds(), "swaps/s")
}
