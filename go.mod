module anycastmap

go 1.22
