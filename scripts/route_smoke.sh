#!/usr/bin/env bash
# route_smoke.sh boots anycastd with the DNS/UDP routing front-end
# enabled, discovers an anycast service prefix through GET /v1/prefixes,
# fires 50k queries at the front-end with routeload, and asserts both
# that the load was answered and that GET /metrics carries the
# anycastmap_route_* series with matching counts. Wired into CI as
# `make route-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
HTTP_ADDR=${HTTP_ADDR:-127.0.0.1:18092}
DNS_ADDR=${DNS_ADDR:-127.0.0.1:15300}
QUERIES=${QUERIES:-50000}
BIN=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

"$GO" build -o "$BIN" ./cmd/anycastd ./cmd/routeload

wait_http() { # url attempts
    local url=$1 tries=${2:-150}
    for _ in $(seq "$tries"); do
        if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "FAIL: $url never became reachable" >&2
    return 1
}

echo "== boot anycastd with the routing front-end =="
"$BIN/anycastd" -addr "$HTTP_ADDR" -dns "$DNS_ADDR" -unicast24s 800 -vps 40 -censuses 1 \
    -refresh 1h &
pids+=($!)
wait_http "http://$HTTP_ADDR/healthz"

# Discover a served deployment: the front-end routes for any prefix the
# snapshot classified anycast.
service=$(curl -fsS "http://$HTTP_ADDR/v1/prefixes?limit=1" |
    grep -o '[0-9][0-9.]*/24' | head -1 | cut -d/ -f1)
if [ -z "$service" ]; then
    echo "FAIL: /v1/prefixes returned no anycast prefix" >&2
    exit 1
fi
echo "service prefix: $service/24"

echo "== $QUERIES queries through the front-end =="
"$BIN/routeload" -addr "$DNS_ADDR" -service "$service" -n "$QUERIES" -workers 2 \
    -json >"$BIN/load.json"
cat "$BIN/load.json"
received=$(grep -o '"received": *[0-9]*' "$BIN/load.json" | grep -o '[0-9]*')
if [ "$received" -lt $((QUERIES * 9 / 10)) ]; then
    echo "FAIL: only $received of $QUERIES queries answered" >&2
    exit 1
fi

# A TXT spot check: the decision description names a policy.
"$BIN/routeload" -addr "$DNS_ADDR" -service "$service" -n 100 -workers 1 -txt >/dev/null

echo "== anycastmap_route_* series =="
scrape=$BIN/route.metrics
curl -fsS "http://$HTTP_ADDR/metrics" -o "$scrape"
for series in \
    anycastmap_route_queries_total \
    anycastmap_route_answers_total \
    anycastmap_route_rcode_total \
    anycastmap_route_answer_seconds; do
    if ! grep -q "^$series" "$scrape"; then
        echo "FAIL: /metrics is missing series $series" >&2
        exit 1
    fi
done
queries_total=$(grep '^anycastmap_route_queries_total' "$scrape" | grep -o '[0-9]*$')
if [ "$queries_total" -lt "$QUERIES" ]; then
    echo "FAIL: anycastmap_route_queries_total = $queries_total, want >= $QUERIES" >&2
    exit 1
fi
echo "ok: front-end answered $received queries; route series exported ($queries_total counted)"

echo "route smoke passed"
