#!/usr/bin/env bash
# metrics_smoke.sh boots both daemons against a tiny world and asserts
# that GET /metrics serves Prometheus text exposition carrying every
# required series family: probe, census, store, cluster, and HTTP. It is
# the end-to-end form of TestMetricsExposition, wired into CI as
# `make metrics-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
ANYCASTD_ADDR=${ANYCASTD_ADDR:-127.0.0.1:18090}
CENSUSD_ADDR=${CENSUSD_ADDR:-127.0.0.1:18091}
BIN=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

"$GO" build -o "$BIN" ./cmd/anycastd ./cmd/censusd

wait_http() { # url attempts
    local url=$1 tries=${2:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "FAIL: $url never became reachable" >&2
    return 1
}

require_series() { # file series...
    local file=$1
    shift
    for series in "$@"; do
        if ! grep -q "^$series" "$file"; then
            echo "FAIL: $file is missing series $series" >&2
            return 1
        fi
    done
}

echo "== anycastd /metrics =="
"$BIN/anycastd" -addr "$ANYCASTD_ADDR" -unicast24s 800 -vps 40 -censuses 1 -agents 2 \
    -refresh 1h &
pids+=($!)
wait_http "http://$ANYCASTD_ADDR/healthz" 150

scrape=$BIN/anycastd.metrics
# A lookup first, so the HTTP series have non-registration traffic.
curl -fsS "http://$ANYCASTD_ADDR/v1/lookup?ip=8.8.8.8" >/dev/null
curl -fsS "http://$ANYCASTD_ADDR/metrics" -o "$scrape"
ct=$(curl -fsS -o /dev/null -w '%{content_type}' "http://$ANYCASTD_ADDR/metrics")
case "$ct" in
text/plain*version=0.0.4*) ;;
*)
    echo "FAIL: anycastd /metrics content type: $ct" >&2
    exit 1
    ;;
esac
require_series "$scrape" \
    anycastmap_probe_probes_sent_total \
    anycastmap_probe_echo_replies_total \
    anycastmap_probe_span_seconds_count \
    anycastmap_probe_spans_in_flight \
    anycastmap_census_rounds_folded_total \
    anycastmap_census_analyze_seconds_count \
    anycastmap_store_snapshot_version \
    anycastmap_store_lookups_total \
    anycastmap_refresh_completed_total \
    anycastmap_cluster_agents_joined_total \
    anycastmap_cluster_frames_folded_total \
    'anycastmap_http_requests_total{endpoint="lookup"}'
grep -q '^anycastmap_cluster_agents_joined_total 2$' "$scrape" ||
    { echo "FAIL: anycastd did not run its census over 2 agents" >&2; exit 1; }
grep -q '^anycastmap_refresh_completed_total 1$' "$scrape" ||
    { echo "FAIL: anycastd first refresh not counted" >&2; exit 1; }
echo "ok: anycastd serves all required series"

echo "== censusd /metrics =="
"$BIN/censusd" -local 2 -metrics "$CENSUSD_ADDR" -unicast24s 3000 -censuses 2 -vps 24 &
pids+=($!)
wait_http "http://$CENSUSD_ADDR/metrics" 150

scrape=$BIN/censusd.metrics
curl -fsS "http://$CENSUSD_ADDR/metrics" -o "$scrape"
require_series "$scrape" \
    anycastmap_probe_probes_sent_total \
    anycastmap_probe_span_seconds_count \
    anycastmap_probe_spans_in_flight \
    anycastmap_census_rounds_folded_total \
    anycastmap_cluster_agents_joined_total \
    anycastmap_cluster_leases_total \
    anycastmap_cluster_shard_fold_seconds_count
echo "ok: censusd coordinator serves all required series"

echo "metrics smoke passed"
