// BGP hijack detection: the Sec. 5 extension of the paper, implemented.
//
// Detecting geo-inconsistency for knowingly unicast prefixes is symptomatic
// of BGP hijacking. This example takes a unicast /24 whose baseline census
// shows a single consistent location, injects a hijack that attracts part
// of the Internet's traffic to a rogue replica, re-runs the latency scan,
// and raises an alarm when the speed-of-light test starts failing.
//
//	go run ./examples/bgphijack
package main

import (
	"fmt"
	"log"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

func main() {
	log.SetFlags(0)

	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	world := netsim.New(cfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)

	// Pick a responsive unicast prefix: the victim.
	var victim netsim.Prefix24
	var target netsim.IP
	world.Prefixes(func(p netsim.Prefix24) {
		if victim != 0 || world.IsAnycast(p) {
			return
		}
		ip, alive := world.Representative(p)
		if !alive {
			return
		}
		// Make sure it actually answers (alive hosts can be silent-now).
		if world.ProbeICMP(pl.VPs()[0], ip, 1).OK() {
			victim, target = p, ip
		}
	})
	if victim == 0 {
		log.Fatal("no responsive unicast prefix found")
	}

	// Baseline scan: a monitoring round before the attack.
	baseline := scan(world, pl, target)
	fmt.Printf("baseline scan of %v: %d samples\n", victim, len(baseline))
	if res := core.Analyze(db, baseline, core.Options{}); res.Anycast {
		log.Fatalf("baseline already geo-inconsistent?! %v", res.Replicas)
	}
	fmt.Println("  geo-consistent: all latency disks share a common region. No alarm.")

	// The attack: a rogue AS in another continent announces the victim's
	// prefix and attracts 40% of the vantage points.
	rogue := db.MustByName("Moscow", "RU")
	if err := world.InjectHijack(victim, rogue.Loc, 0.4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[attacker announces %v from %v, catching ~40%% of the Internet]\n\n", victim, rogue)

	// The next monitoring round sees the origin split in two.
	after := scan(world, pl, target)
	res := core.Analyze(db, after, core.Options{})
	if !res.Anycast {
		log.Fatal("hijack not detected - should not happen with an intercontinental rogue")
	}
	fmt.Printf("ALARM: prefix %v, registered as unicast, now violates the speed of light.\n", victim)
	fmt.Printf("Apparent origins (%d):\n", res.Count())
	for _, r := range res.Replicas {
		if r.Located {
			fmt.Printf("  %v (first seen via %s)\n", r.City, r.VP)
		}
	}
	// Sec. 5 prescribes cross-checking alarms with other data before
	// paging anyone: compare each vantage point's current traceroute with
	// its pre-alarm baseline. Hijacked catchments show early path
	// divergence toward the rogue origin.
	fmt.Println("\nCross-checking with traceroutes:")
	diverged, checked := 0, 0
	for _, vp := range pl.VPs() {
		if checked >= 40 {
			break
		}
		world.ClearHijack(victim)
		base := world.Traceroute(vp, target, 1)
		world.InjectHijack(victim, rogue.Loc, 0.4)
		now := world.Traceroute(vp, target, 1)
		if base == nil || now == nil {
			continue
		}
		checked++
		if shared, minLen := netsim.PathDivergence(base, now); shared < minLen {
			diverged++
		}
	}
	fmt.Printf("  %d of %d vantage points see their forwarding path diverge from baseline.\n", diverged, checked)
	fmt.Println("  Alarm CONFIRMED: geo-inconsistency plus path divergence (Sec. 5's cross-check).")

	// Cleanup also works.
	world.ClearHijack(victim)
	if res := core.Analyze(db, scan(world, pl, target), core.Options{}); res.Anycast {
		log.Fatal("hijack cleared but inconsistency remains")
	}
	fmt.Println("\n[hijack withdrawn; next scan is geo-consistent again]")
}

// scan measures the target from every PlanetLab VP (minimum of 3 rounds).
func scan(world *netsim.World, pl *platform.Platform, target netsim.IP) []core.Measurement {
	var ms []core.Measurement
	for _, vp := range pl.VPs() {
		best := time.Duration(-1)
		for round := uint64(1); round <= 3; round++ {
			if reply := world.ProbeICMP(vp, target, round); reply.OK() {
				if best < 0 || reply.RTT < best {
					best = reply.RTT
				}
			}
		}
		if best >= 0 {
			ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
		}
	}
	return ms
}
