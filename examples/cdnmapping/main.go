// CDN mapping: reproduce the Fig. 5 scenario on any deployment.
//
// The example maps a CDN's anycast footprint twice - once from the ~300
// PlanetLab vantage points and once from the ~1000-probe RIPE-like
// platform - and shows how the denser platform uncovers replicas that
// PlanetLab's academic-network footprint cannot separate, then validates
// both maps against the deployment's published locations (PAI).
//
//	go run ./examples/cdnmapping [AS name]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/groundtruth"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

func main() {
	log.SetFlags(0)
	asName := "MICROSOFT,US"
	if len(os.Args) > 1 {
		asName = os.Args[1]
	}

	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	world := netsim.New(cfg)
	db := cities.Default()

	as, ok := world.Registry.ByName(asName)
	if !ok {
		log.Fatalf("unknown AS %q", asName)
	}
	dep := world.DeploymentsByASN(as.ASN)[0]
	target, _ := world.Representative(dep.Prefix)
	pai := groundtruth.PAI(world, as.ASN)
	fmt.Printf("mapping %s deployment %v (published footprint: %d cities)\n\n", asName, dep.Prefix, len(pai))

	for _, plat := range []*platform.Platform{platform.PlanetLab(db), platform.RIPEAtlas(db)} {
		res := analyzeFrom(world, db, plat, target)
		matched, extra := score(res, pai)
		fmt.Printf("%-10s %4d VPs -> %2d replicas enumerated, %2d matching published cities, %d elsewhere\n",
			plat.Name(), plat.Len(), res.Count(), matched, extra)
		cs := res.Cities()
		sort.Strings(cs)
		fmt.Printf("  %v\n\n", cs)
	}
	fmt.Println("The PlanetLab map is (approximately) a subset of the RIPE map: more vantage")
	fmt.Println("points in more networks separate more replicas (Sec. 3.2 of the paper).")
}

// analyzeFrom measures the target from every VP of the platform (minimum of
// 4 rounds) and runs the full analysis.
func analyzeFrom(world *netsim.World, db *cities.DB, plat *platform.Platform, target netsim.IP) core.Result {
	var ms []core.Measurement
	for _, vp := range plat.VPs() {
		best := time.Duration(-1)
		for round := uint64(1); round <= 4; round++ {
			if reply := world.ProbeICMP(vp, target, round); reply.OK() {
				if best < 0 || reply.RTT < best {
					best = reply.RTT
				}
			}
		}
		if best >= 0 {
			ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
		}
	}
	return core.Analyze(db, ms, core.Options{})
}

// score counts how many located replicas fall in the published city list.
func score(res core.Result, pai map[string]cities.City) (matched, extra int) {
	for _, r := range res.Replicas {
		if !r.Located {
			continue
		}
		if _, ok := pai[r.City.Key()]; ok {
			matched++
		} else {
			extra++
		}
	}
	return matched, extra
}
