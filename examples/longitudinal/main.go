// Longitudinal view: the Sec. 5 "run a continuous service" direction.
//
// The example runs one census per epoch against the evolving anycast
// landscape and tracks how a named deployment grows: which cities appear,
// which disappear, and how the global footprint drifts census over census.
//
//	go run ./examples/longitudinal [AS name]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

func main() {
	log.SetFlags(0)
	asName := "CDNETWORKSUS,US"
	if len(os.Args) > 1 {
		asName = os.Args[1]
	}

	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	base := netsim.New(cfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)

	as, ok := base.Registry.ByName(asName)
	if !ok {
		log.Fatalf("unknown AS %q", asName)
	}

	fmt.Printf("tracking %s across census epochs (each epoch is one census period)\n\n", asName)
	var prev map[string]bool
	for epoch := uint64(0); epoch < 4; epoch++ {
		world := base
		if epoch > 0 {
			world = base.Evolve(epoch)
		}
		dep := world.DeploymentsByASN(as.ASN)[0]
		target, _ := world.Representative(dep.Prefix)

		// One census worth of measurements toward this deployment.
		var ms []core.Measurement
		for _, vp := range pl.VPs() {
			best := time.Duration(-1)
			for r := uint64(1); r <= 2; r++ {
				if reply := world.ProbeICMP(vp, target, 100*epoch+r); reply.OK() {
					if best < 0 || reply.RTT < best {
						best = reply.RTT
					}
				}
			}
			if best >= 0 {
				ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
			}
		}
		res := core.Analyze(db, ms, core.Options{})

		now := map[string]bool{}
		for _, c := range res.Cities() {
			now[c] = true
		}
		var added, removed []string
		for c := range now {
			if prev != nil && !prev[c] {
				added = append(added, c)
			}
		}
		for c := range prev {
			if !now[c] {
				removed = append(removed, c)
			}
		}
		sort.Strings(added)
		sort.Strings(removed)

		fmt.Printf("epoch %d: truth %2d sites, measured %2d replicas", epoch, len(dep.Replicas), res.Count())
		if prev == nil {
			fmt.Printf(" (baseline)\n")
		} else {
			fmt.Printf("  +%v -%v\n", added, removed)
		}
		prev = now
	}

	fmt.Println("\nDeployments mostly grow; a periodic census catches the expansion as it")
	fmt.Println("happens - the longitudinal tracking the paper proposes as future work.")
}
