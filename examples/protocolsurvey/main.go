// Protocol survey: why the census probes with ICMP (Fig. 6, Sec. 3.4).
//
// The example measures the response ratio of five probing protocols against
// a set of well-known anycast deployments and shows the paper's point:
// transport- and application-layer probes have *binary* recall - they only
// work when you already know which service runs on the target - while ICMP
// answers nearly everywhere, making it the only protocol suitable for a
// service-agnostic census.
//
//	go run ./examples/protocolsurvey
package main

import (
	"fmt"
	"log"

	"anycastmap/internal/cities"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

func main() {
	log.SetFlags(0)

	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	world := netsim.New(cfg)
	pl := platform.PlanetLab(cities.Default())

	deployments := []string{
		"OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US", "MICROSOFT,US",
		"L-ROOT,US", "OVH,FR",
	}
	protocols := []struct {
		name  string
		probe func(p platform.VP, t netsim.IP, r uint64) netsim.Reply
	}{
		{"ICMP", func(p platform.VP, t netsim.IP, r uint64) netsim.Reply { return world.ProbeICMP(p, t, r) }},
		{"TCP-53", func(p platform.VP, t netsim.IP, r uint64) netsim.Reply { return world.ProbeTCP(p, t, 53, r) }},
		{"TCP-80", func(p platform.VP, t netsim.IP, r uint64) netsim.Reply { return world.ProbeTCP(p, t, 80, r) }},
		{"DNS/UDP", func(p platform.VP, t netsim.IP, r uint64) netsim.Reply { return world.ProbeDNSUDP(p, t, r) }},
		{"DNS/TCP", func(p platform.VP, t netsim.IP, r uint64) netsim.Reply { return world.ProbeDNSTCP(p, t, r) }},
	}

	fmt.Printf("%-18s", "deployment")
	for _, proto := range protocols {
		fmt.Printf("%9s", proto.name)
	}
	fmt.Println()

	vps := pl.VPs()
	for _, name := range deployments {
		as := world.Registry.MustByName(name)
		dep := world.DeploymentsByASN(as.ASN)[0]
		target, _ := world.Representative(dep.Prefix)
		fmt.Printf("%-18s", name)
		for _, proto := range protocols {
			ok := 0
			const probes = 100
			for i := 0; i < probes; i++ {
				vp := vps[i%len(vps)]
				if proto.probe(vp, target, uint64(1+i/len(vps))).OK() {
					ok++
				}
			}
			fmt.Printf("%8d%%", ok*100/probes)
		}
		fmt.Println()
	}

	fmt.Println("\nICMP is the only protocol with high recall across every deployment;")
	fmt.Println("everything else answers only where the matching service happens to run.")
	fmt.Println("That is why the censuses of the paper are ICMP-based (Sec. 3.4).")
}
