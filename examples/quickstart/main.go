// Quickstart: the smallest end-to-end use of the library.
//
// It builds a synthetic Internet, probes one anycast target and one unicast
// target from every PlanetLab vantage point, and runs the paper's
// detection / enumeration / geolocation technique on both.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic Internet: the full anycast inventory of the paper
	//    plus a small unicast background.
	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	world := netsim.New(cfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)
	fmt.Printf("world: %d /24s, %d of them anycast; %d PlanetLab vantage points\n\n",
		world.NumPrefixes(), len(world.Deployments()), pl.Len())

	// 2. Pick one anycast deployment (CloudFlare's first /24) and one
	//    unicast /24, and measure both from everywhere.
	cf := world.Registry.MustByName("CLOUDFLARENET,US")
	anycastDep := world.DeploymentsByASN(cf.ASN)[0]
	anycastIP, _ := world.Representative(anycastDep.Prefix)

	var unicastIP netsim.IP
	world.Prefixes(func(p netsim.Prefix24) {
		if unicastIP != 0 || world.IsAnycast(p) {
			return
		}
		// A hitlist-alive representative that answers right now.
		if ip, alive := world.Representative(p); alive && world.ProbeICMP(pl.VPs()[0], ip, 1).OK() {
			unicastIP = ip
		}
	})

	for _, target := range []netsim.IP{anycastIP, unicastIP} {
		ms := measure(world, pl, target)
		res := core.Analyze(db, ms, core.Options{})
		if !res.Anycast {
			fmt.Printf("%v: unicast (no speed-of-light violation across %d VPs)\n\n", target, len(ms))
			continue
		}
		fmt.Printf("%v: ANYCAST, at least %d replicas:\n", target, res.Count())
		for _, r := range res.Replicas {
			if r.Located {
				fmt.Printf("  %v\n", r.City)
			}
		}
		fmt.Println()
	}

	// 3. Compare with the ground truth the measurement never saw.
	fmt.Printf("ground truth for %v: %d replicas in %v\n",
		anycastDep.Prefix, len(anycastDep.Replicas), anycastDep.Cities())
}

// measure probes the target from every vantage point, keeping the minimum
// RTT over a few rounds (as the paper's census combination does).
func measure(world *netsim.World, pl *platform.Platform, target netsim.IP) []core.Measurement {
	var ms []core.Measurement
	for _, vp := range pl.VPs() {
		best := time.Duration(-1)
		for round := uint64(1); round <= 3; round++ {
			if reply := world.ProbeICMP(vp, target, round); reply.OK() {
				if best < 0 || reply.RTT < best {
					best = reply.RTT
				}
			}
		}
		if best >= 0 {
			ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
		}
	}
	return ms
}
